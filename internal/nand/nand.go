// Package nand models raw NAND flash as seen by the BlueDBM flash
// controller: cards of buses, buses of chips, chips of erase blocks,
// blocks of pages. It enforces real NAND semantics — program-once
// pages, in-order programming inside a block, erase-before-reuse,
// wear-out, bad blocks — and injects bit errors on reads so that the
// controller's ECC path is genuinely exercised.
//
// Timing is modelled on the paper's custom flash board: ~50 µs cell
// reads, 8 buses per card at 150 MB/s each for an aggregate 1.2 GB/s
// per card (paper §5.1, §6.5).
package nand

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Operation errors. The controller maps these onto its command status.
var (
	ErrBadBlock      = errors.New("nand: bad block")
	ErrNotErased     = errors.New("nand: programming a page that is not erased")
	ErrOutOfOrder    = errors.New("nand: pages in a block must be programmed in order")
	ErrReadFree      = errors.New("nand: reading an unwritten page")
	ErrBadAddress    = errors.New("nand: address out of range")
	ErrWrongDataSize = errors.New("nand: stored image has wrong size")
	// ErrDead reports an operation against a failed card (Fail). It is
	// the whole-card fault domain: every layer above classifies it as a
	// storage fault and fails over to a replica where one exists.
	ErrDead = errors.New("nand: card failed")
)

// Geometry describes one flash card.
type Geometry struct {
	Buses         int // independent channels per card
	ChipsPerBus   int
	BlocksPerChip int
	PagesPerBlock int
	PageSize      int // logical data bytes per page
	OOBSize       int // out-of-band bytes (ECC) stored alongside each page
}

// Validate reports whether all geometry fields are positive.
func (g Geometry) Validate() error {
	if g.Buses <= 0 || g.ChipsPerBus <= 0 || g.BlocksPerChip <= 0 ||
		g.PagesPerBlock <= 0 || g.PageSize <= 0 || g.OOBSize < 0 {
		return fmt.Errorf("nand: invalid geometry %+v", g)
	}
	return nil
}

// StoredPageSize returns the raw bytes stored per page (data + OOB).
func (g Geometry) StoredPageSize() int { return g.PageSize + g.OOBSize }

// PagesPerChip returns pages in one chip.
func (g Geometry) PagesPerChip() int { return g.BlocksPerChip * g.PagesPerBlock }

// TotalPages returns pages in the whole card.
func (g Geometry) TotalPages() int {
	return g.Buses * g.ChipsPerBus * g.PagesPerChip()
}

// TotalBytes returns the card's data capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return int64(g.TotalPages()) * int64(g.PageSize)
}

// Timing holds the card's latency/bandwidth parameters.
type Timing struct {
	ReadPage       sim.Time // cell array -> chip register
	Program        sim.Time // chip register -> cell array
	Erase          sim.Time // whole-block erase
	BusBytesPerSec int64    // per-bus transfer rate
	BusLatency     sim.Time // per-transfer bus handshake latency
}

// DefaultTiming matches the paper's flash board characteristics: the
// ~50 µs cell read (plus command/ECC pipeline overhead) gates the
// sustained per-chip page rate, while the bus itself bursts at
// ONFI-style speed so a single page's transfer is short. With one
// independently-readable LUN per bus this yields ~1.1 GB/s of logical
// bandwidth per 8-bus card — the figure §7.3 reports.
func DefaultTiming() Timing {
	return Timing{
		ReadPage:       60 * sim.Microsecond,
		Program:        350 * sim.Microsecond,
		Erase:          3 * sim.Millisecond,
		BusBytesPerSec: 333_000_000,
		BusLatency:     200 * sim.Nanosecond,
	}
}

// Reliability controls error injection and wear-out.
type Reliability struct {
	// BitErrorRate is the per-bit flip probability on a read of a fresh
	// block. The effective rate grows linearly with the block's erase
	// count: rate = BitErrorRate * (1 + eraseCount/EnduranceCycles).
	BitErrorRate float64
	// EnduranceCycles is the nominal program/erase endurance. After a
	// block passes it, every further erase fails (block goes bad) with
	// probability WearOutProb.
	EnduranceCycles int64
	WearOutProb     float64
	// FactoryBadBlockProb marks blocks bad at manufacture time.
	FactoryBadBlockProb float64
	// ReadDisturb scales the bit-error rate with the number of reads a
	// block has absorbed since its last erase (read-disturb noise):
	// rate *= 1 + ReadDisturb*readsSinceErase. 0 disables it.
	ReadDisturb float64
}

// DefaultReliability returns MLC-flash-like numbers, scaled so that
// tests exercise the ECC path without dominating runtime.
func DefaultReliability() Reliability {
	return Reliability{
		BitErrorRate:        1e-7,
		EnduranceCycles:     3000,
		WearOutProb:         0.05,
		FactoryBadBlockProb: 0.001,
	}
}

// Addr names a page (or block, with Page ignored) on one card.
type Addr struct {
	Bus, Chip, Block, Page int
}

func (a Addr) String() string {
	return fmt.Sprintf("b%d.c%d.blk%d.p%d", a.Bus, a.Chip, a.Block, a.Page)
}

// PageState tracks the lifecycle of one page.
type PageState uint8

// Page lifecycle states.
const (
	PageFree PageState = iota // erased, programmable
	PageWritten
)

// Card is one simulated flash card.
type Card struct {
	eng  *sim.Engine
	name string
	geo  Geometry
	tim  Timing
	rel  Reliability
	rng  *sim.RNG
	// noiseSeed keys the stateless bit-error injector. It is separate
	// from rng (which drives factory bad blocks and wear-out) so that
	// read-path noise never perturbs — and is never perturbed by —
	// lifecycle randomness.
	noiseSeed uint64
	failed    bool // whole-card fault domain; see Fail

	buses []*busState
	chips []*chipState // bus-major order
	data  [][]byte     // stored raw image per linear page index; nil = free
	state []PageState

	// stats
	Reads         sim.Counter
	Programs      sim.Counter
	Erases        sim.Counter
	InjectedFlips sim.Counter
}

type busState struct {
	pipe *sim.Pipe
}

type chipState struct {
	queue      []func(done func())
	running    bool
	eraseCount []int64
	bad        []bool
	nextPage   []int   // next programmable page index per block
	readSerial []int64 // reads since last erase, per block (injector state)
}

// NewCard builds a card. seed drives error injection; identical seeds
// reproduce identical fault patterns.
func NewCard(eng *sim.Engine, name string, geo Geometry, tim Timing, rel Reliability, seed uint64) (*Card, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	c := &Card{
		eng:       eng,
		name:      name,
		geo:       geo,
		tim:       tim,
		rel:       rel,
		rng:       sim.NewRNG(seed),
		noiseSeed: mix64(seed ^ 0xb10eddb4bade5eed),
		data:      make([][]byte, geo.TotalPages()),
		state:     make([]PageState, geo.TotalPages()),
	}
	for b := 0; b < geo.Buses; b++ {
		c.buses = append(c.buses, &busState{
			pipe: sim.NewPipe(eng, fmt.Sprintf("%s/bus%d", name, b), tim.BusBytesPerSec, tim.BusLatency),
		})
		for ch := 0; ch < geo.ChipsPerBus; ch++ {
			cs := &chipState{
				eraseCount: make([]int64, geo.BlocksPerChip),
				bad:        make([]bool, geo.BlocksPerChip),
				nextPage:   make([]int, geo.BlocksPerChip),
				readSerial: make([]int64, geo.BlocksPerChip),
			}
			for blk := 0; blk < geo.BlocksPerChip; blk++ {
				if c.rng.Float64() < rel.FactoryBadBlockProb {
					cs.bad[blk] = true
				}
			}
			c.chips = append(c.chips, cs)
		}
	}
	return c, nil
}

// Geometry returns the card's geometry.
func (c *Card) Geometry() Geometry { return c.geo }

// Timing returns the card's timing parameters.
func (c *Card) Timing() Timing { return c.tim }

// Name returns the card's diagnostic name.
func (c *Card) Name() string { return c.name }

// BusUtilization returns the utilization of bus b.
func (c *Card) BusUtilization(b int) float64 { return c.buses[b].pipe.Utilization() }

// BytesTransferred returns total bytes moved over all buses.
func (c *Card) BytesTransferred() int64 {
	var n int64
	for _, b := range c.buses {
		n += b.pipe.Transferred()
	}
	return n
}

func (c *Card) checkAddr(a Addr, needPage bool) error {
	if a.Bus < 0 || a.Bus >= c.geo.Buses ||
		a.Chip < 0 || a.Chip >= c.geo.ChipsPerBus ||
		a.Block < 0 || a.Block >= c.geo.BlocksPerChip {
		return fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	if needPage && (a.Page < 0 || a.Page >= c.geo.PagesPerBlock) {
		return fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	return nil
}

func (c *Card) chipAt(a Addr) *chipState {
	return c.chips[a.Bus*c.geo.ChipsPerBus+a.Chip]
}

// PageIndex converts an address to the card-linear page index.
func (c *Card) PageIndex(a Addr) int {
	return ((a.Bus*c.geo.ChipsPerBus+a.Chip)*c.geo.BlocksPerChip+a.Block)*c.geo.PagesPerBlock + a.Page
}

// AddrOf converts a card-linear page index back to an address.
func (c *Card) AddrOf(idx int) Addr {
	p := idx % c.geo.PagesPerBlock
	idx /= c.geo.PagesPerBlock
	blk := idx % c.geo.BlocksPerChip
	idx /= c.geo.BlocksPerChip
	ch := idx % c.geo.ChipsPerBus
	bus := idx / c.geo.ChipsPerBus
	return Addr{Bus: bus, Chip: ch, Block: blk, Page: p}
}

// enqueue adds an operation to a chip's FIFO queue and runs it when the
// chip is free. The op must call done() when the chip can accept the
// next operation (which may be before the op's data finishes moving:
// NAND cache registers let a bus transfer overlap the next cell read).
func (c *Card) enqueue(cs *chipState, op func(done func())) {
	cs.queue = append(cs.queue, op)
	if !cs.running {
		cs.running = true
		c.runNext(cs)
	}
}

func (c *Card) runNext(cs *chipState) {
	if len(cs.queue) == 0 {
		cs.running = false
		return
	}
	op := cs.queue[0]
	cs.queue = cs.queue[1:]
	op(func() { c.runNext(cs) })
}

// ReadPage reads the raw stored image (data+OOB) of a page. Timing:
// cell read occupies the chip, then the image crosses the shared bus.
// Bit errors are injected into the returned copy according to the
// block's wear. The callback receives the raw image or an error.
func (c *Card) ReadPage(a Addr, cb func(raw []byte, err error)) {
	if err := c.checkAddr(a, true); err != nil {
		cb(nil, err)
		return
	}
	cs := c.chipAt(a)
	c.enqueue(cs, func(done func()) {
		if c.failed {
			done()
			cb(nil, fmt.Errorf("%w: %s", ErrDead, c.name))
			return
		}
		if cs.bad[a.Block] {
			done()
			cb(nil, fmt.Errorf("%w: %v", ErrBadBlock, a))
			return
		}
		idx := c.PageIndex(a)
		if c.state[idx] != PageWritten {
			done()
			cb(nil, fmt.Errorf("%w: %v", ErrReadFree, a))
			return
		}
		c.Reads.Inc()
		c.eng.After(c.tim.ReadPage, func() {
			done() // register drained into cache; chip can start next op
			raw := make([]byte, len(c.data[idx]))
			copy(raw, c.data[idx])
			serial := cs.readSerial[a.Block]
			cs.readSerial[a.Block]++
			c.corrupt(raw, c.globalBlock(a), cs.eraseCount[a.Block], serial)
			c.buses[a.Bus].pipe.Transfer(len(raw), func() {
				cb(raw, nil)
			})
		})
	})
}

// ProgramPage writes a raw stored image to a page. The image first
// crosses the bus, then programming occupies the chip. NAND rules are
// enforced: the page must be erased and must be the next page in its
// block.
func (c *Card) ProgramPage(a Addr, raw []byte, cb func(err error)) {
	if err := c.checkAddr(a, true); err != nil {
		cb(err)
		return
	}
	if len(raw) != c.geo.StoredPageSize() {
		cb(fmt.Errorf("%w: got %d, want %d", ErrWrongDataSize, len(raw), c.geo.StoredPageSize()))
		return
	}
	cs := c.chipAt(a)
	c.enqueue(cs, func(done func()) {
		if c.failed {
			done()
			cb(fmt.Errorf("%w: %s", ErrDead, c.name))
			return
		}
		if cs.bad[a.Block] {
			done()
			cb(fmt.Errorf("%w: %v", ErrBadBlock, a))
			return
		}
		idx := c.PageIndex(a)
		if c.state[idx] != PageFree {
			done()
			cb(fmt.Errorf("%w: %v", ErrNotErased, a))
			return
		}
		if a.Page != cs.nextPage[a.Block] {
			done()
			cb(fmt.Errorf("%w: %v (next programmable is page %d)", ErrOutOfOrder, a, cs.nextPage[a.Block]))
			return
		}
		stored := make([]byte, len(raw))
		copy(stored, raw)
		c.buses[a.Bus].pipe.Transfer(len(raw), func() {
			c.eng.After(c.tim.Program, func() {
				c.state[idx] = PageWritten
				c.data[idx] = stored
				cs.nextPage[a.Block]++
				c.Programs.Inc()
				done()
				cb(nil)
			})
		})
	})
}

// EraseBlock erases a block, freeing all its pages. Wear accumulates;
// past the endurance limit the block may fail and become bad.
func (c *Card) EraseBlock(a Addr, cb func(err error)) {
	if err := c.checkAddr(a, false); err != nil {
		cb(err)
		return
	}
	cs := c.chipAt(a)
	c.enqueue(cs, func(done func()) {
		if c.failed {
			done()
			cb(fmt.Errorf("%w: %s", ErrDead, c.name))
			return
		}
		if cs.bad[a.Block] {
			done()
			cb(fmt.Errorf("%w: %v", ErrBadBlock, a))
			return
		}
		c.eng.After(c.tim.Erase, func() {
			cs.eraseCount[a.Block]++
			c.Erases.Inc()
			if cs.eraseCount[a.Block] > c.rel.EnduranceCycles && c.rng.Float64() < c.rel.WearOutProb {
				cs.bad[a.Block] = true
				done()
				cb(fmt.Errorf("%w: %v (wore out after %d cycles)", ErrBadBlock, a, cs.eraseCount[a.Block]))
				return
			}
			base := c.PageIndex(Addr{Bus: a.Bus, Chip: a.Chip, Block: a.Block})
			for p := 0; p < c.geo.PagesPerBlock; p++ {
				c.state[base+p] = PageFree
				c.data[base+p] = nil
			}
			cs.nextPage[a.Block] = 0
			cs.readSerial[a.Block] = 0
			done()
			cb(nil)
		})
	})
}

// mix64 is the splitmix64 finalizer (the same mixing sim.RNG applies):
// a stateless hash that decorrelates the injector's draw streams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// globalBlock returns the card-wide index of an address's erase block.
func (c *Card) globalBlock(a Addr) int {
	return (a.Bus*c.geo.ChipsPerBus+a.Chip)*c.geo.BlocksPerChip + a.Block
}

// corrupt injects wear-dependent bit flips into out (a private copy of
// the stored image) for the serial-th read of a block since its last
// erase. The flip pattern is a pure function of (card seed, block,
// erase count, read serial): each block carries its own error state, so
// a block's noise history depends only on its own wear and read count —
// never on how reads to other blocks, chips or cards interleave with it.
//
//simlint:hotpath
func (c *Card) corrupt(out []byte, gblk int, eraseCount, serial int64) {
	rate := c.rel.BitErrorRate
	if rate <= 0 {
		return
	}
	if c.rel.EnduranceCycles > 0 {
		rate *= 1 + float64(eraseCount)/float64(c.rel.EnduranceCycles)
	}
	if c.rel.ReadDisturb > 0 {
		rate *= 1 + c.rel.ReadDisturb*float64(serial)
	}
	bits := len(out) * 8
	mean := rate * float64(bits)
	// Per-(block, erase, read) stateless splitmix stream.
	s := c.noiseSeed ^ mix64(uint64(gblk)*0x9e3779b97f4a7c15+1)
	s ^= mix64(uint64(eraseCount)*0xd1342543de82ef95 + 0x2545f4914f6cdd1d)
	s += uint64(serial) * 0x9e3779b97f4a7c15
	// Cheap Poisson-ish sampling: integer part plus Bernoulli remainder.
	s += 0x9e3779b97f4a7c15
	flips := int(mean)
	if float64(mix64(s)>>11)/(1<<53) < mean-float64(flips) {
		flips++
	}
	for i := 0; i < flips; i++ {
		s += 0x9e3779b97f4a7c15
		pos := int(mix64(s) % uint64(bits))
		out[pos/8] ^= 1 << uint(pos%8)
		c.InjectedFlips.Inc()
	}
}

// Fail marks the whole card dead: every subsequent operation — and
// every operation still queued behind the failure point — completes
// with ErrDead. In-flight cell/bus activity that already passed its
// fault check finishes normally, the way a yanked card's last DMA
// drains. Fail models the card-level fault domain (a controller brick,
// a pulled board); block-level media failure is MarkBad/wear-out.
func (c *Card) Fail() { c.failed = true }

// Failed reports whether the card is dead.
func (c *Card) Failed() bool { return c.failed }

// Replace swaps in a fresh, blank card of identical geometry: all
// pages free, zero wear, no bad blocks, injector state reset. The
// replacement card keeps the same identity (name, seed, attached
// controller), mirroring a field swap of the flash board. Callers
// should replace only after the dead card's queued operations have
// drained (they complete with ErrDead in virtual time).
func (c *Card) Replace() {
	c.failed = false
	for i := range c.data {
		c.data[i] = nil
		c.state[i] = PageFree
	}
	for _, cs := range c.chips {
		for b := range cs.eraseCount {
			cs.eraseCount[b] = 0
			cs.bad[b] = false
			cs.nextPage[b] = 0
			cs.readSerial[b] = 0
		}
	}
}

// IsBad reports whether a block is marked bad.
func (c *Card) IsBad(a Addr) bool {
	if err := c.checkAddr(a, false); err != nil {
		return true
	}
	return c.chipAt(a).bad[a.Block]
}

// EraseCount returns a block's accumulated erase cycles.
func (c *Card) EraseCount(a Addr) int64 {
	if err := c.checkAddr(a, false); err != nil {
		return 0
	}
	return c.chipAt(a).eraseCount[a.Block]
}

// MarkBad forcibly marks a block bad (used by tests and by the
// controller when ECC reports an uncorrectable page).
func (c *Card) MarkBad(a Addr) {
	if err := c.checkAddr(a, false); err != nil {
		return
	}
	c.chipAt(a).bad[a.Block] = true
}

// State returns a page's lifecycle state without timing effects.
func (c *Card) State(a Addr) PageState {
	if err := c.checkAddr(a, true); err != nil {
		return PageFree
	}
	return c.state[c.PageIndex(a)]
}

// Peek returns the stored raw image without timing or error injection.
// It is a debug/test hook, not part of the modelled hardware surface.
func (c *Card) Peek(a Addr) []byte {
	if err := c.checkAddr(a, true); err != nil {
		return nil
	}
	return c.data[c.PageIndex(a)]
}
