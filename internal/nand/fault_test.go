package nand

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sim"
)

// readRaw reads one page synchronously (driving the engine) and
// returns the raw image.
func readRaw(t *testing.T, eng *sim.Engine, c *Card, a Addr) []byte {
	t.Helper()
	var got []byte
	c.ReadPage(a, func(r []byte, err error) {
		if err != nil {
			t.Fatalf("read %v: %v", a, err)
		}
		got = r
	})
	eng.Run()
	return got
}

// TestInjectorPerBlockDeterminism pins the injector's defining
// property: a block's flip pattern is a pure function of its own
// (seed, block, erase count, read serial) history, independent of how
// reads to other blocks interleave with it. Two cards with the same
// seed see identical per-block noise even though one interleaves its
// reads with heavy traffic to a different block.
func TestInjectorPerBlockDeterminism(t *testing.T) {
	rel := Reliability{BitErrorRate: 1e-3}
	run := func(interleave bool) [][]byte {
		eng := sim.NewEngine()
		c, err := NewCard(eng, "det", testGeometry(), DefaultTiming(), rel, 77)
		if err != nil {
			t.Fatal(err)
		}
		target := Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
		other := Addr{Bus: 1, Chip: 1, Block: 3, Page: 0}
		c.ProgramPage(target, mkRaw(c, 0x55), func(error) {})
		c.ProgramPage(other, mkRaw(c, 0xaa), func(error) {})
		eng.Run()
		var reads [][]byte
		for i := 0; i < 8; i++ {
			if interleave {
				for j := 0; j < 3; j++ {
					readRaw(t, eng, c, other)
				}
			}
			reads = append(reads, readRaw(t, eng, c, target))
		}
		return reads
	}
	plain := run(false)
	mixed := run(true)
	for i := range plain {
		if !bytes.Equal(plain[i], mixed[i]) {
			t.Fatalf("read %d of block 0 differs when interleaved with other-block traffic", i)
		}
	}
}

// TestInjectorWearScaling checks that the effective error rate grows
// with erase count: a heavily worn block accumulates measurably more
// flips over many reads than a fresh one.
func TestInjectorWearScaling(t *testing.T) {
	eng := sim.NewEngine()
	rel := Reliability{BitErrorRate: 2e-4, EnduranceCycles: 10}
	c, err := NewCard(eng, "wear", testGeometry(), DefaultTiming(), rel, 9)
	if err != nil {
		t.Fatal(err)
	}
	a := Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	countFlips := func(reads int) int {
		c.ProgramPage(a, mkRaw(c, 0x33), func(error) {})
		eng.Run()
		want := mkRaw(c, 0x33)
		flips := 0
		for i := 0; i < reads; i++ {
			got := readRaw(t, eng, c, a)
			for j := range got {
				if got[j] != want[j] {
					flips++
				}
			}
		}
		return flips
	}
	fresh := countFlips(400)
	// Wear the block to 5x endurance: effective rate 6x the fresh rate.
	for i := 0; i < 50; i++ {
		c.EraseBlock(a, func(err error) {
			if err != nil {
				t.Fatalf("erase %d: %v", i, err)
			}
		})
		eng.Run()
	}
	worn := countFlips(400)
	if worn <= fresh*2 {
		t.Fatalf("wear did not scale the error rate: fresh=%d flips, worn=%d", fresh, worn)
	}
}

// TestReadDisturb checks the optional read-disturb knob: with it set,
// a block's late reads (high read serial since erase) see more flips
// than its early ones.
func TestReadDisturb(t *testing.T) {
	eng := sim.NewEngine()
	rel := Reliability{BitErrorRate: 1e-4, ReadDisturb: 0.05}
	c, err := NewCard(eng, "rd", testGeometry(), DefaultTiming(), rel, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := Addr{Bus: 0, Chip: 0, Block: 1, Page: 0}
	c.ProgramPage(a, mkRaw(c, 0x77), func(error) {})
	eng.Run()
	want := mkRaw(c, 0x77)
	flipsIn := func(reads int) int {
		flips := 0
		for i := 0; i < reads; i++ {
			got := readRaw(t, eng, c, a)
			for j := range got {
				if got[j] != want[j] {
					flips++
				}
			}
		}
		return flips
	}
	early := flipsIn(200) // serials 0..199: rate ~1x..11x
	late := flipsIn(200)  // serials 200..399: rate ~11x..21x
	if late <= early {
		t.Fatalf("read disturb did not raise the late-read error rate: early=%d late=%d", early, late)
	}
}

// TestFailAndReplace pins the card fault domain: after Fail every
// operation returns ErrDead; after Replace the card is blank and fully
// serviceable again.
func TestFailAndReplace(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	a := Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	c.ProgramPage(a, mkRaw(c, 0x11), func(err error) {
		if err != nil {
			t.Fatalf("program before failure: %v", err)
		}
	})
	eng.Run()

	c.Fail()
	if !c.Failed() {
		t.Fatal("Failed() = false after Fail")
	}
	var rErr, pErr, eErr error
	c.ReadPage(a, func(_ []byte, err error) { rErr = err })
	c.ProgramPage(Addr{0, 0, 0, 1}, mkRaw(c, 2), func(err error) { pErr = err })
	c.EraseBlock(Addr{0, 0, 1, 0}, func(err error) { eErr = err })
	eng.Run()
	for name, err := range map[string]error{"read": rErr, "program": pErr, "erase": eErr} {
		if !errors.Is(err, ErrDead) {
			t.Errorf("%s err = %v, want ErrDead", name, err)
		}
	}

	c.Replace()
	if c.Failed() {
		t.Fatal("Failed() = true after Replace")
	}
	// The replacement is blank: the old data is gone, pages are free.
	var freshErr error
	c.ReadPage(a, func(_ []byte, err error) { freshErr = err })
	eng.Run()
	if !errors.Is(freshErr, ErrReadFree) {
		t.Fatalf("read on replaced card = %v, want ErrReadFree (blank card)", freshErr)
	}
	if c.EraseCount(a) != 0 {
		t.Fatalf("erase count %d on replaced card, want 0", c.EraseCount(a))
	}
	// And fully serviceable: program/read round-trips.
	raw := mkRaw(c, 0x99)
	c.ProgramPage(a, raw, func(err error) {
		if err != nil {
			t.Fatalf("program on replaced card: %v", err)
		}
	})
	eng.Run()
	if got := readRaw(t, eng, c, a); !bytes.Equal(got, raw) {
		t.Fatal("replaced card returned wrong data")
	}
}

// TestFailDrainsQueuedOps: operations queued behind the failure point
// complete (with ErrDead), never hang — the layer above relies on
// every callback firing.
func TestFailDrainsQueuedOps(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	a := Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	c.ProgramPage(a, mkRaw(c, 1), func(error) {})
	eng.Run()
	// Queue several reads, then fail before the engine runs them. Read 0
	// is dispatched to the chip at enqueue time — it passed its fault
	// check and finishes like an in-flight DMA; reads 1..3 sit in the
	// chip queue and must drain with ErrDead, never hang.
	errs := make([]error, 4)
	for i := range errs {
		i := i
		c.ReadPage(a, func(_ []byte, err error) { errs[i] = err })
	}
	c.Fail()
	eng.Run()
	if errs[0] != nil {
		t.Errorf("in-flight read 0: err = %v, want nil (already dispatched)", errs[0])
	}
	for i, err := range errs[1:] {
		if !errors.Is(err, ErrDead) {
			t.Errorf("queued read %d: err = %v, want ErrDead", i+1, err)
		}
	}
}

// TestCorruptAllocFree pins the injector's noise computation at zero
// allocations: it runs on every flash read of every experiment.
func TestCorruptAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	rel := Reliability{BitErrorRate: 1e-3, EnduranceCycles: 100, ReadDisturb: 0.01}
	c, err := NewCard(eng, "alloc", testGeometry(), DefaultTiming(), rel, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, c.Geometry().StoredPageSize())
	serial := int64(0)
	avg := testing.AllocsPerRun(200, func() {
		c.corrupt(buf, 5, 7, serial)
		serial++
	})
	if avg != 0 {
		t.Fatalf("corrupt allocates %.1f per call, want 0", avg)
	}
}
