package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testGeometry() Geometry {
	return Geometry{
		Buses: 2, ChipsPerBus: 2, BlocksPerChip: 8, PagesPerBlock: 16,
		PageSize: 512, OOBSize: 64,
	}
}

func perfectCard(t *testing.T, eng *sim.Engine) *Card {
	t.Helper()
	c, err := NewCard(eng, "t", testGeometry(), DefaultTiming(), Reliability{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mkRaw(c *Card, fill byte) []byte {
	raw := make([]byte, c.Geometry().StoredPageSize())
	for i := range raw {
		raw[i] = fill
	}
	return raw
}

func TestProgramReadRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	a := Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	raw := mkRaw(c, 0xab)
	var progErr error = errors.New("not called")
	c.ProgramPage(a, raw, func(err error) { progErr = err })
	eng.Run()
	if progErr != nil {
		t.Fatalf("program: %v", progErr)
	}
	var got []byte
	c.ReadPage(a, func(r []byte, err error) {
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = r
	})
	eng.Run()
	if !bytes.Equal(got, raw) {
		t.Fatal("read returned different bytes than programmed")
	}
}

func TestReadUnwrittenFails(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	var gotErr error
	c.ReadPage(Addr{0, 0, 0, 0}, func(_ []byte, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrReadFree) {
		t.Fatalf("err = %v, want ErrReadFree", gotErr)
	}
}

func TestProgramTwiceFails(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	a := Addr{0, 0, 0, 0}
	c.ProgramPage(a, mkRaw(c, 1), func(err error) {
		if err != nil {
			t.Fatalf("first program: %v", err)
		}
	})
	eng.Run()
	var second error
	c.ProgramPage(a, mkRaw(c, 2), func(err error) { second = err })
	eng.Run()
	if !errors.Is(second, ErrNotErased) {
		t.Fatalf("second program err = %v, want ErrNotErased", second)
	}
}

func TestOutOfOrderProgramFails(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	var gotErr error
	c.ProgramPage(Addr{0, 0, 0, 5}, mkRaw(c, 1), func(err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", gotErr)
	}
}

func TestEraseFreesBlock(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	a := Addr{0, 0, 3, 0}
	c.ProgramPage(a, mkRaw(c, 7), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	c.EraseBlock(a, func(err error) {
		if err != nil {
			t.Fatalf("erase: %v", err)
		}
	})
	eng.Run()
	if c.State(a) != PageFree {
		t.Fatal("page not freed by erase")
	}
	if c.EraseCount(a) != 1 {
		t.Fatalf("erase count = %d, want 1", c.EraseCount(a))
	}
	// Reprogramming page 0 after erase works.
	var again error = errors.New("not called")
	c.ProgramPage(a, mkRaw(c, 9), func(err error) { again = err })
	eng.Run()
	if again != nil {
		t.Fatalf("reprogram after erase: %v", again)
	}
}

func TestReadTiming(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	a := Addr{0, 0, 0, 0}
	c.ProgramPage(a, mkRaw(c, 1), func(error) {})
	eng.Run()
	start := eng.Now()
	var done sim.Time
	c.ReadPage(a, func([]byte, error) { done = eng.Now() })
	eng.Run()
	elapsed := done - start
	// Expected: 50us cell read + 576B @ 150MB/s (3.84us) + 200ns latency.
	tim := DefaultTiming()
	wire := sim.Time(int64(c.Geometry().StoredPageSize()) * int64(sim.Second) / tim.BusBytesPerSec)
	want := tim.ReadPage + wire + tim.BusLatency
	if elapsed != want {
		t.Fatalf("read latency = %v, want %v", elapsed, want)
	}
}

func TestChipSerialization(t *testing.T) {
	// Two reads on the same chip: the second cell read may start only
	// after the first one's register drains (modelled as cell-read end).
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	a := Addr{0, 0, 0, 0}
	b := Addr{0, 0, 0, 1}
	c.ProgramPage(a, mkRaw(c, 1), func(error) {})
	eng.Run()
	c.ProgramPage(b, mkRaw(c, 2), func(error) {})
	eng.Run()
	start := eng.Now()
	var t1, t2 sim.Time
	c.ReadPage(a, func([]byte, error) { t1 = eng.Now() - start })
	c.ReadPage(b, func([]byte, error) { t2 = eng.Now() - start })
	eng.Run()
	if t2 <= t1 {
		t.Fatalf("second read (%v) did not serialize after first (%v)", t2, t1)
	}
	// The second read's cell phase overlaps the first's bus transfer, so
	// it must NOT cost a full 2x.
	if t2 >= 2*t1 {
		t.Fatalf("no pipelining: t1=%v t2=%v", t1, t2)
	}
}

func TestBusParallelism(t *testing.T) {
	// Reads on different buses proceed fully in parallel.
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	a := Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	b := Addr{Bus: 1, Chip: 0, Block: 0, Page: 0}
	for _, addr := range []Addr{a, b} {
		c.ProgramPage(addr, mkRaw(c, 3), func(error) {})
		eng.Run()
	}
	start := eng.Now()
	var t1, t2 sim.Time
	c.ReadPage(a, func([]byte, error) { t1 = eng.Now() - start })
	c.ReadPage(b, func([]byte, error) { t2 = eng.Now() - start })
	eng.Run()
	if t1 != t2 {
		t.Fatalf("parallel buses should finish together: %v vs %v", t1, t2)
	}
}

func TestCardBandwidthSaturation(t *testing.T) {
	// Saturating all buses of a card approaches Buses * BusBytesPerSec.
	// Uses full 8 KB pages: their 61 µs bus occupancy exceeds the 50 µs
	// cell read, so the bus — not the cell array — is the bottleneck,
	// as on the paper's flash board.
	eng := sim.NewEngine()
	geo := testGeometry()
	geo.PageSize = 8192
	geo.OOBSize = 1024
	c, err := NewCard(eng, "bw", geo, DefaultTiming(), Reliability{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Program every page of block 0 on every chip.
	pages := 0
	for bus := 0; bus < geo.Buses; bus++ {
		for chip := 0; chip < geo.ChipsPerBus; chip++ {
			for p := 0; p < geo.PagesPerBlock; p++ {
				c.ProgramPage(Addr{bus, chip, 0, p}, mkRaw(c, byte(p)), func(err error) {
					if err != nil {
						t.Errorf("program: %v", err)
					}
				})
				pages++
			}
		}
	}
	eng.Run()
	start := eng.Now()
	done := 0
	for bus := 0; bus < geo.Buses; bus++ {
		for chip := 0; chip < geo.ChipsPerBus; chip++ {
			for p := 0; p < geo.PagesPerBlock; p++ {
				c.ReadPage(Addr{bus, chip, 0, p}, func(_ []byte, err error) {
					if err != nil {
						t.Errorf("read: %v", err)
					}
					done++
				})
			}
		}
	}
	eng.Run()
	if done != pages {
		t.Fatalf("completed %d of %d reads", done, pages)
	}
	elapsed := (eng.Now() - start).Seconds()
	bw := float64(pages*geo.StoredPageSize()) / elapsed
	max := float64(geo.Buses) * float64(DefaultTiming().BusBytesPerSec)
	if bw > max {
		t.Fatalf("achieved %.0f B/s exceeds physical max %.0f", bw, max)
	}
	// With 2 chips/bus and 16 deep queues the bus should be well used.
	if bw < 0.5*max {
		t.Fatalf("achieved %.0f B/s, expected at least half of %.0f", bw, max)
	}
}

func TestBadBlockRejectsOps(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	a := Addr{0, 0, 2, 0}
	c.MarkBad(a)
	if !c.IsBad(a) {
		t.Fatal("MarkBad did not stick")
	}
	var pErr, rErr, eErr error
	c.ProgramPage(a, mkRaw(c, 1), func(err error) { pErr = err })
	c.ReadPage(a, func(_ []byte, err error) { rErr = err })
	c.EraseBlock(a, func(err error) { eErr = err })
	eng.Run()
	for name, err := range map[string]error{"program": pErr, "read": rErr, "erase": eErr} {
		if !errors.Is(err, ErrBadBlock) {
			t.Errorf("%s err = %v, want ErrBadBlock", name, err)
		}
	}
}

func TestWearOut(t *testing.T) {
	eng := sim.NewEngine()
	geo := testGeometry()
	rel := Reliability{EnduranceCycles: 10, WearOutProb: 1.0}
	c, err := NewCard(eng, "wear", geo, DefaultTiming(), rel, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := Addr{0, 0, 0, 0}
	var lastErr error
	erases := 0
	for i := 0; i < 12; i++ {
		c.EraseBlock(a, func(err error) { lastErr = err; erases++ })
		eng.Run()
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrBadBlock) {
		t.Fatalf("block should wear out after endurance: err=%v after %d erases", lastErr, erases)
	}
	if erases != 11 {
		t.Fatalf("wore out after %d erases, want 11 (10 endurance + 1)", erases)
	}
}

func TestBitErrorInjection(t *testing.T) {
	eng := sim.NewEngine()
	geo := testGeometry()
	rel := Reliability{BitErrorRate: 1e-3} // aggressive: ~4.6 flips/page
	c, err := NewCard(eng, "err", geo, DefaultTiming(), rel, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := Addr{0, 0, 0, 0}
	raw := mkRaw(c, 0x55)
	c.ProgramPage(a, raw, func(error) {})
	eng.Run()
	flipsSeen := 0
	for i := 0; i < 20; i++ {
		c.ReadPage(a, func(got []byte, err error) {
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if got[j] != raw[j] {
					flipsSeen++
				}
			}
		})
		eng.Run()
	}
	if flipsSeen == 0 {
		t.Fatal("no bit errors injected at rate 1e-3")
	}
	// The stored image must remain pristine (errors are read-path only).
	if !bytes.Equal(c.Peek(a), raw) {
		t.Fatal("stored image was corrupted")
	}
}

func TestAddrConversionRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	geo := c.Geometry()
	prop := func(idx uint32) bool {
		i := int(idx) % geo.TotalPages()
		return c.PageIndex(c.AddrOf(i)) == i
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBadAddressRejected(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	bad := []Addr{
		{Bus: -1}, {Bus: 99}, {Chip: 99}, {Block: 99}, {Page: 99},
	}
	for _, a := range bad {
		var gotErr error
		c.ReadPage(a, func(_ []byte, err error) { gotErr = err })
		eng.Run()
		if !errors.Is(gotErr, ErrBadAddress) {
			t.Errorf("addr %v: err = %v, want ErrBadAddress", a, gotErr)
		}
	}
}

func TestWrongSizeProgramRejected(t *testing.T) {
	eng := sim.NewEngine()
	c := perfectCard(t, eng)
	var gotErr error
	c.ProgramPage(Addr{0, 0, 0, 0}, make([]byte, 10), func(err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrWrongDataSize) {
		t.Fatalf("err = %v, want ErrWrongDataSize", gotErr)
	}
}

func TestGeometryMath(t *testing.T) {
	g := testGeometry()
	if g.TotalPages() != 2*2*8*16 {
		t.Fatalf("TotalPages = %d", g.TotalPages())
	}
	if g.TotalBytes() != int64(g.TotalPages())*512 {
		t.Fatalf("TotalBytes = %d", g.TotalBytes())
	}
	if g.StoredPageSize() != 576 {
		t.Fatalf("StoredPageSize = %d", g.StoredPageSize())
	}
	if err := (Geometry{}).Validate(); err == nil {
		t.Fatal("zero geometry validated")
	}
}

// Property: any sequence of in-order programs and erases keeps the card
// consistent with a trivial in-memory model.
func TestProgramEraseOracleProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		eng := sim.NewEngine()
		geo := Geometry{Buses: 1, ChipsPerBus: 1, BlocksPerChip: 2, PagesPerBlock: 4, PageSize: 8, OOBSize: 0}
		c, err := NewCard(eng, "oracle", geo, DefaultTiming(), Reliability{}, 1)
		if err != nil {
			return false
		}
		type blockModel struct {
			next int
			data [4][]byte
		}
		var model [2]blockModel
		ok := true
		for i, op := range ops {
			blk := int(op>>1) % 2
			if op&1 == 0 { // program next page if room
				bm := &model[blk]
				if bm.next >= 4 {
					continue
				}
				page := bm.next
				raw := bytes.Repeat([]byte{byte(i)}, 8)
				c.ProgramPage(Addr{0, 0, blk, page}, raw, func(err error) {
					if err != nil {
						ok = false
					}
				})
				bm.data[page] = raw
				bm.next++
			} else { // erase
				c.EraseBlock(Addr{0, 0, blk, 0}, func(err error) {
					if err != nil {
						ok = false
					}
				})
				model[blk] = blockModel{}
			}
			eng.Run()
		}
		// Verify contents.
		for blk := range model {
			for p := 0; p < 4; p++ {
				a := Addr{0, 0, blk, p}
				want := model[blk].data[p]
				if want == nil {
					if c.State(a) != PageFree {
						return false
					}
					continue
				}
				if !bytes.Equal(c.Peek(a), want) {
					return false
				}
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
