package sched

import (
	"math"

	"repro/internal/sim"
)

// finite clamps NaN and ±Inf to 0. Every float exported into a
// Snapshot passes through it: a stream with zero completions (or any
// other degenerate window) must yield zeros, never NaN — NaN does not
// round-trip through encoding/json, so one poisoned field would make
// the whole BENCH_*.json emission fail.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// classAgg accumulates one QoS class's metrics.
type classAgg struct {
	lat       *sim.Tally
	ops       int64
	errors    int64
	rejected  int64
	coalesced int64
	bytes     int64
}

// stats is the scheduler-wide metrics state.
type stats struct {
	eng         *sim.Engine
	start       sim.Time
	classes     [NumClasses]classAgg
	batches     int64
	batchedReqs int64
}

func (st *stats) init(eng *sim.Engine) {
	st.eng = eng
	st.start = eng.Now()
	for cl := 0; cl < NumClasses; cl++ {
		st.classes[cl].lat = sim.NewTally(Class(cl).String())
	}
}

func (st *stats) class(cl Class) *classAgg { return &st.classes[cl] }

// ClassSnapshot is one QoS class's slice of a Snapshot. Latencies are
// virtual microseconds; throughput is over the snapshot window.
type ClassSnapshot struct {
	Class     string  `json:"class"`
	Ops       int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	Rejected  int64   `json:"rejected"`
	Coalesced int64   `json:"coalesced"`
	MeanUs    float64 `json:"mean_us"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	MaxUs     float64 `json:"max_us"`
	OpsPerSec float64 `json:"ops_per_sec"`
	MBps      float64 `json:"mbps"`
}

// Snapshot is the scheduler's aggregate metrics view, shaped for JSON
// emission by cmd/bluedbm-bench.
type Snapshot struct {
	ElapsedMs      float64         `json:"elapsed_ms"`
	TotalOps       int64           `json:"total_ops"`
	TotalOpsPerSec float64         `json:"total_ops_per_sec"`
	TotalMBps      float64         `json:"total_mbps"`
	Batches        int64           `json:"batches"`
	AvgBatch       float64         `json:"avg_batch"`
	Rejected       int64           `json:"rejected"`
	Coalesced      int64           `json:"coalesced"`
	PeakQueue      int             `json:"peak_queue"`
	Classes        []ClassSnapshot `json:"classes"`
}

// Snapshot reports metrics accumulated since New or the last
// ResetStats, with rates computed over elapsed virtual time.
func (s *Scheduler) Snapshot() Snapshot {
	elapsed := s.eng.Now() - s.stats.start
	secs := elapsed.Seconds()
	out := Snapshot{
		ElapsedMs: float64(elapsed) / float64(sim.Millisecond),
		Batches:   s.stats.batches,
	}
	var bytes int64
	for cl := 0; cl < NumClasses; cl++ {
		agg := &s.stats.classes[cl]
		cs := ClassSnapshot{
			Class:     Class(cl).String(),
			Ops:       agg.ops,
			Errors:    agg.errors,
			Rejected:  agg.rejected,
			Coalesced: agg.coalesced,
			MeanUs:    finite(agg.lat.Mean()),
			P50Us:     finite(agg.lat.Percentile(50)),
			P99Us:     finite(agg.lat.Percentile(99)),
			MaxUs:     finite(agg.lat.Max()),
		}
		if secs > 0 {
			cs.OpsPerSec = finite(float64(agg.ops) / secs)
			cs.MBps = finite(float64(agg.bytes) / secs / 1e6)
		}
		out.TotalOps += agg.ops
		out.Rejected += agg.rejected
		out.Coalesced += agg.coalesced
		bytes += agg.bytes
		out.Classes = append(out.Classes, cs)
	}
	if secs > 0 {
		out.TotalOpsPerSec = finite(float64(out.TotalOps) / secs)
		out.TotalMBps = finite(float64(bytes) / secs / 1e6)
	}
	if s.stats.batches > 0 {
		out.AvgBatch = finite(float64(s.stats.batchedReqs) / float64(s.stats.batches))
	}
	for _, nq := range s.nodes {
		if nq.peak > out.PeakQueue {
			out.PeakQueue = nq.peak
		}
	}
	return out
}

// ResetStats zeroes all metrics and restarts the rate window at the
// current virtual time. Use it to exclude warmup or seeding phases.
func (s *Scheduler) ResetStats() {
	s.stats = stats{}
	s.stats.init(s.eng)
	for _, nq := range s.nodes {
		nq.peak = nq.qlen
	}
}
