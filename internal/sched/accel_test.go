package sched_test

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestAccelStreamReadsComplete: ISP reads admitted through an
// AccelStream complete with the right data and are accounted under
// the accel class — the scheduler sees them.
func TestAccelStreamReadsComplete(t *testing.T) {
	c := testCluster(t, 2, 64)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.NewAccelStream("engine", 0)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for i := 0; i < 32; i++ {
		// Even pages local to the origin, odd pages on the remote node:
		// both admitted at the OWNING node, data lands at the origin.
		a := core.LinearPage(c.Params, i%2, i/2)
		if err := st.Read(a, func(data []byte, err error) {
			if err != nil {
				t.Errorf("read %v: %v", a, err)
			}
			if len(data) == 0 {
				t.Errorf("read %v: no data", a)
			}
			completed++
		}); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	c.Run()
	if completed != 32 {
		t.Fatalf("completed %d of 32", completed)
	}
	if st.Submitted != 32 {
		t.Fatalf("submitted = %d", st.Submitted)
	}
	snap := s.Snapshot()
	for _, cs := range snap.Classes {
		if cs.Class == "accel" && cs.Ops != 32 {
			t.Fatalf("accel class ops = %d, want 32", cs.Ops)
		}
	}
	st.Close()
	if err := st.Read(core.LinearPage(c.Params, 0, 0), nil); err != sched.ErrClosed {
		t.Fatalf("closed stream accepted a read: %v", err)
	}
}

// TestAccelTokenBudgetBound: the accel class may never hold more
// device-window slots than its token budget, no matter how much ISP
// work is queued.
func TestAccelTokenBudgetBound(t *testing.T) {
	c := testCluster(t, 1, 64)
	cfg := sched.DefaultConfig()
	cfg.MaxInflight = 8
	cfg.AccelShare = 0.5 // budget: 4 slots
	s, err := sched.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.NewAccelStream("hog", 0)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 48; i++ {
		a := core.LinearPage(c.Params, 0, i%64)
		if err := st.Read(a, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			done++
		}); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	// Sample the in-flight gauge on a fine grid for the whole drain.
	maxSeen := 0
	var probe func()
	probe = func() {
		if got := s.AccelInflight(0); got > maxSeen {
			maxSeen = got
		}
		if done < 48 {
			c.Eng.After(2*sim.Microsecond, probe)
		}
	}
	probe()
	c.Run()
	if done != 48 {
		t.Fatalf("completed %d of 48", done)
	}
	if maxSeen > 4 {
		t.Fatalf("accel held %d window slots, budget is 4", maxSeen)
	}
	if maxSeen == 0 {
		t.Fatal("probe never saw accel work in flight")
	}
}

// TestAccelClassClosedToHostPaths: host streams and the host router
// cannot submit at the Accel class; it belongs to the device-side ISP
// admission path alone.
func TestAccelClassClosedToHostPaths(t *testing.T) {
	c := testCluster(t, 1, 16)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewStream("bad", 0, sched.Accel); err == nil {
		t.Fatal("host stream opened at the Accel class")
	}
	if err := s.AttachRouter(sched.Accel); err == nil {
		t.Fatal("host router attached at the Accel class")
	}
}

// TestAccelRouterClosesBypass: once the scheduler attaches its accel
// router, legacy core.Node.ISPRead traffic is admitted through the
// Accel class instead of bypassing QoS arbitration; detaching
// restores the raw path.
func TestAccelRouterClosesBypass(t *testing.T) {
	c := testCluster(t, 2, 64)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.AttachAccelRouter(0)
	done := 0
	for i := 0; i < 16; i++ {
		a := core.LinearPage(c.Params, i%2, i)
		c.Node(0).ISPRead(a, func(data []byte, err error) {
			if err != nil {
				t.Errorf("ISPRead: %v", err)
			}
			done++
		})
	}
	c.Run()
	if done != 16 {
		t.Fatalf("completed %d of 16", done)
	}
	accelOps := int64(0)
	for _, cs := range s.Snapshot().Classes {
		if cs.Class == "accel" {
			accelOps = cs.Ops
		}
	}
	if accelOps != 16 {
		t.Fatalf("accel class saw %d ops, want all 16 routed", accelOps)
	}
	s.DetachAccelRouter()
	raw := false
	c.Node(0).ISPRead(core.LinearPage(c.Params, 0, 0), func(_ []byte, err error) {
		if err != nil {
			t.Errorf("raw ISPRead: %v", err)
		}
		raw = true
	})
	c.Run()
	if !raw {
		t.Fatal("detached ISPRead never completed")
	}
	for _, cs := range s.Snapshot().Classes {
		if cs.Class == "accel" && cs.Ops != 16 {
			t.Fatalf("detached read still routed: accel ops = %d", cs.Ops)
		}
	}
}

// TestSnapshotZeroCompletionsMarshalsClean: a scheduler whose streams
// never completed anything must export an all-zero, JSON-safe
// snapshot — no NaN/Inf from empty tallies.
func TestSnapshotZeroCompletionsMarshalsClean(t *testing.T) {
	c := testCluster(t, 1, 1)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("empty JSON")
	}
	for _, cs := range snap.Classes {
		for name, v := range map[string]float64{
			"mean": cs.MeanUs, "p50": cs.P50Us, "p99": cs.P99Us,
			"max": cs.MaxUs, "ops/s": cs.OpsPerSec, "MB/s": cs.MBps,
		} {
			if v != 0 || math.IsNaN(v) {
				t.Fatalf("class %s %s = %v, want 0", cs.Class, name, v)
			}
		}
	}
}

// TestAccelShareValidation: out-of-range budgets are rejected.
func TestAccelShareValidation(t *testing.T) {
	c := testCluster(t, 1, 1)
	for _, share := range []float64{-0.1, 1.5} {
		cfg := sched.DefaultConfig()
		cfg.AccelShare = share
		if _, err := sched.New(c, cfg); err == nil {
			t.Fatalf("accel share %v accepted", share)
		}
	}
}
