// Package sched is the multi-tenant request scheduler that admits
// concurrent client streams into a BlueDBM cluster.
//
// BlueDBM's performance story (paper §3.3, §6.5) depends on keeping
// thousands of flash requests in flight across the host interface,
// the controllers and the inter-controller network. This package is
// the seam where that concurrency is created and governed:
//
//   - every node has a bounded admission queue; when it is full the
//     scheduler reports backpressure (ErrBackpressure) to the caller
//     instead of queueing unboundedly;
//   - each stream carries a QoS class (Realtime, Interactive, Batch);
//     dispatch is strict-priority across classes with an aging escape
//     hatch so saturating low-priority traffic cannot invert priority
//     and a saturating high-priority tenant cannot starve the rest
//     forever;
//   - admitted requests are submitted to the device in batches via
//     core.Node.SubmitHostBatch, paying the host storage-stack
//     software overhead and RPC doorbell once per batch instead of
//     once per page — the dominant throughput lever of Figure 12;
//   - queued duplicate reads to the same page are coalesced into one
//     flash operation whose result fans out to every waiter.
//
// The scheduler runs entirely in virtual time on the cluster's event
// engine, so runs are exactly reproducible: same configuration and
// workload seed, same per-request latencies.
package sched

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Scheduler errors.
var (
	// ErrBackpressure reports that a node's admission queue is full.
	// The request was not admitted; the caller should back off and
	// retry (closed-loop clients) or drop (open-loop clients).
	ErrBackpressure = errors.New("sched: node admission queue full")
	// ErrClosed reports submission on a closed stream.
	ErrClosed = errors.New("sched: stream closed")
)

// Class is a stream's QoS class. Lower values dispatch first.
type Class uint8

// The five QoS classes. Realtime is for latency-critical point
// lookups, Interactive for ordinary user queries, Batch for scans and
// bulk loads that only care about throughput. Accel is in-store
// processor flash traffic: admitted and window-accounted like host
// traffic (so accelerators cannot bypass QoS arbitration and starve
// host streams), but issued on the device-side flash interfaces with
// no host software, doorbell or DMA charges, and capped by its own
// token budget (Config.AccelShare). Background is device housekeeping
// — FTL garbage-collection relocation and erase traffic from
// internal/volume — and is subject to GC-aware deferral: it may
// occupy only an urgency-scaled share of the device window (the GC
// token budget) so foreground tail latency survives collections.
//
// Tenant host streams use the classes below Accel; Accel requests
// enter only through AccelStream (or an attached accel router), and
// Background is reserved for the volume's GC traffic.
const (
	Realtime Class = iota
	Interactive
	Batch
	Accel
	Background
	NumClasses = 5
)

func (c Class) String() string {
	switch c {
	case Realtime:
		return "realtime"
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Accel:
		return "accel"
	case Background:
		return "background"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Config sizes the scheduler.
type Config struct {
	// QueueDepth bounds each node's admission queue (all classes
	// together). Submissions beyond it fail with ErrBackpressure.
	QueueDepth int
	// MaxInflight caps requests outstanding at one node's device. It
	// should not exceed the host interface's read buffer count; beyond
	// that requests just queue inside the device.
	MaxInflight int
	// BatchSize is the maximum number of requests submitted per
	// doorbell (one software + RPC charge per batch). 1 disables
	// batching and reproduces the naive one-op-per-doorbell host path.
	BatchSize int
	// AgingRounds is how many consecutive dispatch rounds a non-empty
	// class may be passed over before it is guaranteed one slot in the
	// next batch. It is the anti-starvation bound of the strict
	// priority policy.
	AgingRounds int
	// Coalesce merges queued duplicate reads to the same page into a
	// single flash operation.
	Coalesce bool
	// AccelShare is the fraction of the device window (MaxInflight)
	// that the Accel class — in-store processor flash reads — may
	// occupy per node: its token budget, mirroring the GC budget. ISP
	// reads are granted window slots by the dispatcher but issue on
	// the device-side flash interfaces (no host software, doorbell or
	// DMA), so this budget is the only thing bounding how hard
	// accelerators can hit a card while host streams share it. Zero
	// defaults to 0.5, and the budget never rounds below one slot:
	// there is deliberately no zero-budget setting, because an
	// admitted Accel read can ONLY ever issue through these tokens —
	// a zero budget would wedge it in the queue forever. A cluster
	// with no ISP traffic pays nothing for the reservation (the accel
	// dispatch pass is a no-op and the host classes use the full
	// window); to forbid ISP work entirely, don't open AccelStreams.
	AccelShare float64
	// GCDefer enables GC-aware dispatch of the Background class: each
	// node gets a token budget of device-window slots Background
	// requests may occupy, scaled by the node's GC urgency (reported
	// by the FTLs through SetGCUrgency). At zero urgency relocation
	// trickles one op at a time; as free-block headroom shrinks the
	// budget grows, and at critical urgency Background dispatches
	// unthrottled (host writes are about to stall anyway). False is
	// GC-oblivious dispatch: Background is just a fourth priority
	// class and a collection may flood the whole device window.
	GCDefer bool
}

// DefaultConfig returns the production configuration: deep admission
// queues, device-saturating inflight window, 16-request doorbells.
func DefaultConfig() Config {
	return Config{
		QueueDepth:  1024,
		MaxInflight: 128,
		BatchSize:   16,
		AgingRounds: 8,
		Coalesce:    true,
		AccelShare:  0.5,
		GCDefer:     true,
	}
}

// defaultAccelShare applies when Config.AccelShare is left zero.
const defaultAccelShare = 0.5

// gcCriticalUrgency is the urgency at which Background dispatch stops
// being throttled entirely: the free pool is nearly dry and deferring
// relocation further only converts read tail latency into a full
// write stall.
const gcCriticalUrgency = 0.875

func (c Config) validate() error {
	if c.QueueDepth <= 0 {
		return fmt.Errorf("sched: queue depth %d", c.QueueDepth)
	}
	if c.MaxInflight <= 0 {
		return fmt.Errorf("sched: max inflight %d", c.MaxInflight)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("sched: batch size %d", c.BatchSize)
	}
	if c.AgingRounds <= 0 {
		return fmt.Errorf("sched: aging rounds %d", c.AgingRounds)
	}
	if c.AccelShare < 0 || c.AccelShare > 1 {
		return fmt.Errorf("sched: accel share %.2f out of [0,1]", c.AccelShare)
	}
	return nil
}

// request is one admitted (or coalesced) operation. class is the
// scheduling class and may rise via priority inheritance; statClass
// is the submitter's class and is what metrics are recorded under.
//
//simlint:pool get=getReq put=putReq
type request struct {
	class     Class
	statClass Class
	addr      core.PageAddr
	write     bool
	erase     bool
	// accel marks a device-side ISP read: admitted at the node that
	// owns the flash page, granted a window slot under the Accel token
	// budget, and issued from the origin node's ISP path instead of
	// riding a host doorbell batch.
	accel  bool
	origin int // issuing node of an accel read
	data   []byte
	rcb    func(data []byte, err error)
	wcb    func(err error)
	enq    sim.Time
	// followers are coalesced duplicate reads riding this request's
	// flash operation; they hold no queue slot of their own.
	followers []*request

	// Pool plumbing: requests are recycled through Scheduler.freeReqs,
	// so the per-dispatch completion callback is bound once, at first
	// allocation, instead of once per doorbell. nq is the queue the
	// request is currently admitted to (rebound on every reuse);
	// done forwards device completions to nq.complete. routedWcb
	// adapts rcb's two-argument host-router signature to the write
	// callback without a per-request closure.
	nq        *nodeQueue
	done      func(data []byte, err error)
	routedWcb func(err error)
}

// getReq pops a recycled request (or allocates one, binding its reusable
// callbacks to the new request's identity). All fields except the
// callbacks and recycled buffer capacity are zero.
//
//simlint:hotpath
func (s *Scheduler) getReq() *request {
	if n := len(s.freeReqs); n > 0 {
		r := s.freeReqs[n-1]
		s.freeReqs[n-1] = nil
		s.freeReqs = s.freeReqs[:n-1]
		return r
	}
	//simlint:allow hotpath (pool-miss path: the request and its two bound callbacks are built once and recycled via putReq forever after)
	r := &request{}
	//simlint:allow hotpath (bound once per pooled request lifetime, not per dispatch)
	r.done = func(data []byte, err error) { r.nq.complete(r, data, err) }
	//simlint:allow hotpath (bound once per pooled request lifetime, not per dispatch)
	r.routedWcb = func(err error) { r.rcb(nil, err) }
	return r
}

// putReq recycles a finished (or rejected) request. The caller must
// guarantee no outstanding reference: completion has fired and the
// request is in no queue, table or follower list.
//
//simlint:hotpath
func (s *Scheduler) putReq(r *request) {
	*r = request{
		data:      r.data[:0],
		followers: r.followers[:0],
		done:      r.done,
		routedWcb: r.routedWcb,
	}
	s.freeReqs = append(s.freeReqs, r)
}

// Scheduler admits streams into one cluster.
type Scheduler struct {
	cluster *core.Cluster
	eng     *sim.Engine
	cfg     Config
	nodes   []*nodeQueue
	stats   stats

	// freeReqs is the request recycle pool (LIFO for cache warmth).
	freeReqs []*request
}

// New attaches a scheduler to a cluster. The scheduler shares the
// cluster's event engine; it has no goroutines and is safe exactly
// like the rest of the simulation: single-threaded, deterministic.
func New(cluster *core.Cluster, cfg Config) (*Scheduler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{cluster: cluster, eng: cluster.Eng, cfg: cfg}
	for i := 0; i < cluster.Nodes(); i++ {
		s.nodes = append(s.nodes, newNodeQueue(s, cluster.Node(i)))
	}
	s.stats.init(cluster.Eng)
	return s, nil
}

// Config returns the scheduler configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// AttachRouter installs this scheduler as the cluster's host router:
// subsequent untraced Node.HostRead/HostWrite calls are admitted
// through a per-cluster implicit stream of the given class, so legacy
// single-request callers and scheduler streams share one admission
// path. DetachRouter removes the hook.
func (s *Scheduler) AttachRouter(class Class) error {
	if class >= NumClasses {
		return fmt.Errorf("sched: class %d out of range", class)
	}
	if class == Accel {
		return fmt.Errorf("sched: %v is the device-side ISP class; host traffic cannot use it", class)
	}
	s.cluster.SetHostRouter(func(node int, req core.HostReq) error {
		r := s.getReq()
		r.class, r.statClass, r.addr, r.write, r.enq = class, class, req.Addr, req.Write, s.eng.Now()
		if req.Write {
			// Snapshot the payload: it sits in the admission queue
			// after the caller's HostWrite returns, and callers are
			// free to reuse their buffer once the call returns.
			r.data = append(r.data[:0], req.Data...)
			r.rcb = req.Done
			r.wcb = r.routedWcb
		} else {
			r.rcb = req.Done
		}
		if err := s.nodes[node].admit(r); err != nil {
			s.putReq(r)
			return err
		}
		return nil
	})
	return nil
}

// DetachRouter removes the cluster host-router hook.
func (s *Scheduler) DetachRouter() {
	s.cluster.SetHostRouter(nil)
}

// QueueLen returns the current admission-queue occupancy of a node.
func (s *Scheduler) QueueLen(node int) int { return s.nodes[node].qlen }

// Inflight returns the number of requests a node currently has
// outstanding at its device.
func (s *Scheduler) Inflight(node int) int { return s.nodes[node].inflight }

// AccelInflight returns the number of Accel-class reads a node
// currently has in its device window (always within the accel token
// budget).
func (s *Scheduler) AccelInflight(node int) int { return s.nodes[node].accelInflight }

// SetGCUrgency reports how badly a node's FTLs need their Background
// relocation work to run, from 0 (plenty of free-block headroom) to 1
// (writes about to stall). The volume layer calls this from the FTL
// urgency hooks; the dispatcher scales the node's GC token budget with
// it. Raising urgency may unblock deferred Background work, so a
// dispatch round is kicked.
func (s *Scheduler) SetGCUrgency(node int, u float64) {
	if node < 0 || node >= len(s.nodes) {
		return
	}
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	nq := s.nodes[node]
	if u != nq.gcUrgency {
		nq.gcUrgency = u
		nq.kick()
	}
}

// GCUrgency returns a node's current urgency setting.
func (s *Scheduler) GCUrgency(node int) float64 { return s.nodes[node].gcUrgency }

// nodeQueue is the per-node admission and dispatch state.
type nodeQueue struct {
	s    *Scheduler
	node *core.Node

	q      [NumClasses][]*request
	qlen   int
	peak   int
	starve [NumClasses]int

	inflight int
	// bgInflight counts Background-class requests in the device
	// window; the GC token budget caps it.
	bgInflight int
	// accelInflight counts Accel-class reads in the device window; the
	// accel token budget (Config.AccelShare) caps it.
	accelInflight int
	gcUrgency     float64
	kicked        bool
	// ringing is true while a doorbell's software work occupies the
	// node's submission thread. The thread is serial, so ringing a
	// second doorbell early would only commit queued requests to a
	// smaller batch; instead the queue accumulates until the thread
	// frees — adaptive batching: single requests at light load, full
	// batches under pressure.
	ringing bool

	// pendingReads indexes queued (not yet dispatched) reads for
	// coalescing. It is an open-addressed linear-probe table (Knuth
	// 6.4R deletion) rather than a Go map: admit/pop hit it on every
	// read, and the table keeps that path free of map-cell allocation
	// and hash-iteration overhead. Slots with a nil request are empty;
	// occupancy is bounded by QueueDepth, and the table grows to keep
	// load factor at or below 1/2.
	pendingReads []readSlot
	pendingLen   int

	// kickFn and ringFn are the dispatch-round and doorbell-issued
	// callbacks, bound once so kick() and dispatchHost() never
	// allocate a closure (a method value would).
	kickFn func()
	ringFn func()

	// batch is the dispatch scratch list, reused across doorbells.
	batch []*request
}

// readSlot is one pendingReads table entry.
type readSlot struct {
	addr core.PageAddr
	r    *request
}

func newNodeQueue(s *Scheduler, node *core.Node) *nodeQueue {
	nq := &nodeQueue{s: s, node: node, pendingReads: make([]readSlot, 64)}
	nq.kickFn = func() {
		nq.kicked = false
		nq.dispatch()
	}
	nq.ringFn = func() {
		nq.ringing = false
		nq.kick()
	}
	return nq
}

// hashAddr mixes a page address into a table index (splitmix64 tail;
// collisions are resolved by probing, so quality only affects speed).
func hashAddr(a core.PageAddr) uint64 {
	const mult = 0x9E3779B97F4A7C15
	h := uint64(a.Node)
	h = h*mult + uint64(a.Card)
	h = h*mult + uint64(a.Addr.Bus)
	h = h*mult + uint64(a.Addr.Chip)
	h = h*mult + uint64(a.Addr.Block)
	h = h*mult + uint64(a.Addr.Page)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// readLookup returns the queued read lead for addr, or nil.
func (nq *nodeQueue) readLookup(a core.PageAddr) *request {
	if nq.pendingLen == 0 {
		return nil
	}
	mask := uint64(len(nq.pendingReads) - 1)
	for i := hashAddr(a) & mask; ; i = (i + 1) & mask {
		s := &nq.pendingReads[i]
		if s.r == nil {
			return nil
		}
		if s.addr == a {
			return s.r
		}
	}
}

// readInsert records r as the coalescing lead for its address. The
// caller has checked the address is absent.
func (nq *nodeQueue) readInsert(r *request) {
	if (nq.pendingLen+1)*2 > len(nq.pendingReads) {
		old := nq.pendingReads
		nq.pendingReads = make([]readSlot, 2*len(old))
		nq.pendingLen = 0
		for i := range old {
			if old[i].r != nil {
				nq.readInsert(old[i].r)
			}
		}
	}
	mask := uint64(len(nq.pendingReads) - 1)
	i := hashAddr(r.addr) & mask
	for nq.pendingReads[i].r != nil {
		i = (i + 1) & mask
	}
	nq.pendingReads[i] = readSlot{addr: r.addr, r: r}
	nq.pendingLen++
}

// readDelete removes the entry for addr. With mustMatch non-nil the
// entry is only removed if it holds that exact request (pop's check
// that a dispatched read is still its address's lead).
func (nq *nodeQueue) readDelete(a core.PageAddr, mustMatch *request) {
	if nq.pendingLen == 0 {
		return
	}
	mask := uint64(len(nq.pendingReads) - 1)
	i := hashAddr(a) & mask
	for {
		s := &nq.pendingReads[i]
		if s.r == nil {
			return
		}
		if s.addr == a {
			if mustMatch != nil && s.r != mustMatch {
				return
			}
			break
		}
		i = (i + 1) & mask
	}
	nq.pendingLen--
	// Backward-shift deletion: refill the hole with any later cluster
	// entry whose probe path runs through it, so lookups never stop
	// early at a tombstone-free hole.
	nq.pendingReads[i] = readSlot{}
	j := i
	for {
		j = (j + 1) & mask
		e := &nq.pendingReads[j]
		if e.r == nil {
			return
		}
		h := hashAddr(e.addr) & mask
		// Entry j may stay iff its home h lies cyclically in (i, j].
		if (j > i && h > i && h <= j) || (j < i && (h > i || h <= j)) {
			continue
		}
		nq.pendingReads[i] = *e
		*e = readSlot{}
		i = j
	}
}

// admit enqueues a request or reports backpressure. Coalesced reads
// piggyback on an already-queued read and consume no queue slot.
// Accel reads never coalesce with host reads (or each other): the two
// paths complete through different hardware (device-side scan vs host
// DMA), so sharing one flash op would skip real work for one of them.
func (nq *nodeQueue) admit(r *request) error {
	r.nq = nq
	if !r.write && !r.erase && !r.accel && nq.s.cfg.Coalesce {
		if lead := nq.readLookup(r.addr); lead != nil {
			lead.followers = append(lead.followers, r)
			nq.s.stats.class(r.statClass).coalesced++
			// Priority inheritance: a high-priority follower must not
			// inherit a low-priority lead's queue wait — that would be
			// priority inversion through the coalescing map. Promote
			// the lead into the follower's class instead.
			if r.class < lead.class {
				nq.promote(lead, r.class)
			}
			return nil
		}
	}
	if nq.qlen >= nq.s.cfg.QueueDepth {
		nq.s.stats.class(r.statClass).rejected++
		return ErrBackpressure
	}
	if r.write && nq.s.cfg.Coalesce {
		// A write to this page fences coalescing: a read admitted
		// after it must not ride a read queued before it, which would
		// GUARANTEE it pre-write data. Note this is all the fence
		// provides — the scheduler does not order reads after writes
		// to the same page in general (priority classes and the
		// device pipeline may reorder them); tenants that need
		// read-your-write must await the write's completion, as the
		// workload drivers' disjoint read/log regions do by design.
		nq.readDelete(r.addr, nil)
	}
	nq.q[r.class] = append(nq.q[r.class], r)
	nq.qlen++
	if nq.qlen > nq.peak {
		nq.peak = nq.qlen
	}
	if !r.write && !r.erase && !r.accel && nq.s.cfg.Coalesce {
		nq.readInsert(r)
	}
	nq.kick()
	return nil
}

// kick schedules a dispatch round if one is useful and not already
// scheduled. Dispatch runs as a zero-delay event so that a burst of
// submissions in the same instant forms one batch instead of many.
// While a doorbell's software occupies the submission thread, only
// Accel work can dispatch — the ISP path needs no host thread.
//
//simlint:hotpath
func (nq *nodeQueue) kick() {
	if nq.kicked || nq.qlen == 0 || nq.inflight >= nq.s.cfg.MaxInflight {
		return
	}
	if nq.ringing && !nq.accelReady() {
		return
	}
	nq.kicked = true
	nq.s.eng.After(0, nq.kickFn)
}

// accelReady reports whether a queued Accel read could be granted a
// slot right now under the accel token budget.
func (nq *nodeQueue) accelReady() bool {
	return len(nq.q[Accel]) > 0 && nq.accelTokens() > 0
}

// dispatch runs one round: device-side Accel grants up to the accel
// token budget, then a host doorbell batch (when the submission
// thread is free) over the remaining window. Granting Accel first
// makes the token budget a RESERVATION, not just a cap: under
// saturating host load the window would otherwise always be full
// when accel's turn came, and in-store processing would starve on
// leftovers — the inverse of the bug this class exists to fix. The
// budget is small (AccelShare of the window), and host latency
// classes take the rest strict-priority first, so realtime tail
// latency stays protected.
//
//simlint:hotpath
func (nq *nodeQueue) dispatch() {
	nq.dispatchAccel()
	if !nq.ringing {
		nq.dispatchHost()
	}
}

// dispatchHost forms one batch and rings one doorbell. At most one
// doorbell occupies the submission thread at a time (see ringing);
// while its software runs, arrivals and freed inflight slots
// accumulate so the next doorbell carries a bigger batch. The Accel
// class never joins a doorbell batch: its requests issue device-side
// (see dispatchAccel).
//
//simlint:hotpath
func (nq *nodeQueue) dispatchHost() {
	budget := nq.s.cfg.BatchSize
	if room := nq.s.cfg.MaxInflight - nq.inflight; room < budget {
		budget = room
	}
	if budget > nq.qlen {
		budget = nq.qlen
	}
	if budget <= 0 {
		return
	}

	batch := nq.batch[:0]
	var took [NumClasses]int
	bgTaken := 0
	// Aging pass: any class starved for AgingRounds consecutive
	// rounds gets one guaranteed slot, lowest priority first so the
	// most starved traffic is served before the escape hatch fills.
	// Background's escape slot still honours the GC token budget: a
	// zero budget means relocation work is already in flight, so the
	// class is making progress, not starving.
	for cl := NumClasses - 1; cl >= 0 && len(batch) < budget; cl-- {
		if Class(cl) == Accel {
			continue // never rides a doorbell; see dispatchAccel
		}
		if nq.starve[cl] >= nq.s.cfg.AgingRounds && len(nq.q[cl]) > 0 {
			if Class(cl) == Background && nq.gcTokens(bgTaken) == 0 {
				continue
			}
			batch = append(batch, nq.pop(Class(cl)))
			took[cl]++
			if Class(cl) == Background {
				bgTaken++
			}
		}
	}
	// Strict priority for the remaining slots. Background fills last
	// and only up to the node's GC token budget.
	for cl := Class(0); cl < NumClasses && len(batch) < budget; cl++ {
		if cl == Accel {
			continue
		}
		for len(nq.q[cl]) > 0 && len(batch) < budget {
			if cl == Background && nq.gcTokens(bgTaken) == 0 {
				break
			}
			batch = append(batch, nq.pop(cl))
			took[cl]++
			if cl == Background {
				bgTaken++
			}
		}
	}
	for cl := 0; cl < NumClasses; cl++ {
		if Class(cl) == Accel {
			continue // token-paced, not starving; never age-boosted
		}
		switch {
		case took[cl] > 0 || len(nq.q[cl]) == 0:
			nq.starve[cl] = 0
		default:
			nq.starve[cl]++
		}
	}

	if len(batch) == 0 {
		// Only Background work is queued and its token budget is spent:
		// the in-flight relocation ops will kick a new round when they
		// complete (or SetGCUrgency raises the budget).
		nq.batch = batch
		return
	}
	nq.inflight += len(batch)
	nq.bgInflight += bgTaken
	nq.ringing = true
	nq.s.stats.batches++
	nq.s.stats.batchedReqs += int64(len(batch))
	reqs := nq.node.GetBatch()
	for _, r := range batch {
		//simlint:allow hotpath (GetBatch returns the node's recycled batch buffer; growth is amortized across doorbells)
		reqs = append(reqs, core.HostReq{
			Addr:       r.addr,
			Write:      r.write,
			Erase:      r.erase,
			Background: r.class == Background,
			Data:       r.data,
			Done:       r.done,
		})
	}
	for i := range batch {
		batch[i] = nil
	}
	nq.batch = batch[:0]
	nq.node.SubmitHostBatch(reqs, nq.ringFn)
}

// dispatchAccel grants queued Accel-class reads device-window slots —
// up to the accel token budget — and issues each on the device-side
// ISP path from its origin node: the FPGA arbiter hands flash access
// to the in-store processor directly, with no doorbell, no submission
// thread, and no host DMA. The grant still occupies a window slot, so
// the dispatcher's picture of device occupancy includes ISP traffic —
// the whole point of admitting it here.
//
//simlint:hotpath
func (nq *nodeQueue) dispatchAccel() {
	for len(nq.q[Accel]) > 0 && nq.inflight < nq.s.cfg.MaxInflight && nq.accelTokens() > 0 {
		r := nq.pop(Accel)
		nq.inflight++
		nq.accelInflight++
		nq.s.cluster.Node(r.origin).ISPReadDirect(r.addr, r.done)
	}
}

// accelTokens returns how many more Accel reads may be granted window
// slots right now: the accel token budget, a fixed share of the
// device window (Config.AccelShare), never below one slot.
func (nq *nodeQueue) accelTokens() int {
	share := nq.s.cfg.AccelShare
	if share == 0 {
		share = defaultAccelShare
	}
	budget := int(share * float64(nq.s.cfg.MaxInflight))
	if budget < 1 {
		budget = 1
	}
	t := budget - nq.accelInflight
	if t < 0 {
		return 0
	}
	return t
}

// promote moves a queued read to a higher-priority class queue (its
// accounting moves with it). Only reads are ever promoted, so NAND
// write ordering is unaffected.
//
//simlint:hotpath
func (nq *nodeQueue) promote(lead *request, to Class) {
	q := nq.q[lead.class]
	for i, x := range q {
		if x == lead {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			nq.q[lead.class] = q[:len(q)-1]
			break
		}
	}
	lead.class = to
	//simlint:allow hotpath (per-class queues are persistent fields; growth is amortized over the queue's lifetime)
	nq.q[to] = append(nq.q[to], lead)
}

// pop removes the FIFO head of one class queue.
//
//simlint:hotpath
func (nq *nodeQueue) pop(cl Class) *request {
	r := nq.q[cl][0]
	nq.q[cl][0] = nil
	nq.q[cl] = nq.q[cl][1:]
	nq.qlen--
	if !r.write && nq.s.cfg.Coalesce {
		nq.readDelete(r.addr, r)
	}
	return r
}

// gcTokens returns how many more Background requests may join the
// current batch: the GC token budget. The budget is the share of the
// device window Background may occupy — one slot at zero urgency,
// growing linearly with urgency, the full window at critical urgency
// or under GC-oblivious dispatch.
func (nq *nodeQueue) gcTokens(taken int) int {
	mi := nq.s.cfg.MaxInflight
	cap := mi
	if nq.s.cfg.GCDefer && nq.gcUrgency < gcCriticalUrgency {
		// Quadratic in urgency: mild deficits below the FTLs'
		// low-water marks earn little extra device share; only real
		// headroom pressure opens the window up.
		cap = 1 + int(float64(mi-1)*nq.gcUrgency*nq.gcUrgency)
	}
	t := cap - nq.bgInflight - taken
	if t < 0 {
		return 0
	}
	return t
}

// complete finishes a dispatched request and every coalesced follower.
//
//simlint:hotpath
func (nq *nodeQueue) complete(r *request, data []byte, err error) {
	nq.inflight--
	if r.class == Background {
		nq.bgInflight--
	}
	if r.accel {
		nq.accelInflight--
	}
	nq.s.finish(r, data, err)
	for i, f := range r.followers {
		nq.s.finish(f, data, err)
		nq.s.putReq(f)
		r.followers[i] = nil
	}
	nq.s.putReq(r)
	nq.kick()
}

// finish records per-class metrics and fires the caller's callback.
func (s *Scheduler) finish(r *request, data []byte, err error) {
	agg := s.stats.class(r.statClass)
	agg.ops++
	agg.lat.AddTime(s.eng.Now() - r.enq)
	switch {
	case err != nil:
		agg.errors++
	case r.erase:
		// no data moved
	case r.write:
		agg.bytes += int64(len(r.data))
	default:
		agg.bytes += int64(len(data))
	}
	if r.write || r.erase {
		r.wcb(err)
	} else {
		r.rcb(data, err)
	}
}
