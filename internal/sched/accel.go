package sched

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// AccelStream is an in-store processor's admission handle: the fix
// for ISP traffic bypassing the QoS scheduler. Engine flash reads are
// admitted at the node that OWNS the page (that is where the flash
// contention lives), wait their turn in the Accel class under its
// token budget, and — once granted a device-window slot — issue on
// the device-side ISP path (core.Node.ISPReadDirect): local pages hit
// the card's ISP interface, remote pages ride the integrated storage
// network, and no host software, doorbell or DMA is charged anywhere.
//
// The scheduler therefore sees and window-accounts every flash
// operation the appliance performs — host, GC and ISP alike — while
// the ISP data path keeps the paper's zero-host-involvement property.
type AccelStream struct {
	s      *Scheduler
	name   string
	origin int
	closed bool

	// Submitted counts reads this stream admitted successfully.
	Submitted int64
}

// NewAccelStream opens a device-side ISP read stream issuing from
// node origin's in-store processors.
func (s *Scheduler) NewAccelStream(name string, origin int) (*AccelStream, error) {
	if origin < 0 || origin >= len(s.nodes) {
		return nil, fmt.Errorf("sched: node %d out of range [0,%d)", origin, len(s.nodes))
	}
	return &AccelStream{s: s, name: name, origin: origin}, nil
}

// Name returns the stream name.
func (st *AccelStream) Name() string { return st.name }

// Origin returns the node whose in-store processors issue the reads.
func (st *AccelStream) Origin() int { return st.origin }

// Read admits a physical page read anywhere in the cluster. cb fires
// when the page data reaches the origin node's in-store processor (or
// failed). ErrBackpressure means the owning node's admission queue is
// full and cb will never fire: back off and retry.
func (st *AccelStream) Read(a core.PageAddr, cb func(data []byte, err error)) error {
	if st.closed {
		return ErrClosed
	}
	if a.Node < 0 || a.Node >= len(st.s.nodes) {
		return fmt.Errorf("sched: page owner %d out of range [0,%d)", a.Node, len(st.s.nodes))
	}
	r := st.s.getReq()
	r.class, r.statClass, r.addr, r.accel = Accel, Accel, a, true
	r.origin, r.enq, r.rcb = st.origin, st.s.eng.Now(), cb
	if err := st.s.nodes[a.Node].admit(r); err != nil {
		st.s.putReq(r)
		return err
	}
	st.Submitted++
	return nil
}

// Close marks the stream closed; further submissions fail with
// ErrClosed. In-flight requests still complete.
func (st *AccelStream) Close() { st.closed = true }

// AttachAccelRouter installs this scheduler as the cluster's accel
// router: subsequent core.Node.ISPRead calls — the path every legacy
// in-store processor uses — are admitted through the Accel class
// exactly like AccelStream reads, so no accelerator can bypass QoS
// arbitration just by holding a *core.Node. Admission backpressure is
// absorbed by retrying after retryDelay (default 5 µs when zero):
// legacy ISP pump loops predate the scheduler and do not handle
// admission errors. DetachAccelRouter removes the hook.
func (s *Scheduler) AttachAccelRouter(retryDelay sim.Time) {
	if retryDelay <= 0 {
		retryDelay = 5 * sim.Microsecond
	}
	s.cluster.SetAccelRouter(func(origin int, a core.PageAddr, cb func(data []byte, err error)) {
		if a.Node < 0 || a.Node >= len(s.nodes) {
			cb(nil, fmt.Errorf("sched: page owner %d out of range [0,%d)", a.Node, len(s.nodes)))
			return
		}
		var try func()
		try = func() {
			r := s.getReq()
			r.class, r.statClass, r.addr, r.accel = Accel, Accel, a, true
			r.origin, r.enq, r.rcb = origin, s.eng.Now(), cb
			if err := s.nodes[a.Node].admit(r); err == ErrBackpressure {
				s.putReq(r)
				s.eng.After(retryDelay, try)
			} else if err != nil {
				s.putReq(r)
				cb(nil, err)
			}
		}
		try()
	})
}

// DetachAccelRouter removes the cluster accel-router hook.
func (s *Scheduler) DetachAccelRouter() {
	s.cluster.SetAccelRouter(nil)
}
