package sched_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testCluster builds a small seeded cluster.
func testCluster(t *testing.T, nodes, pages int) *core.Cluster {
	t.Helper()
	p := core.DefaultParams(nodes)
	p.Geometry.BlocksPerChip = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		if err := c.SeedLinear(n, pages, workload.RandomPages(7)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// runMix drives a small mixed multi-stream workload and returns the
// snapshot and the final virtual time.
func runMix(t *testing.T, cfg sched.Config) (sched.Snapshot, sim.Time) {
	t.Helper()
	c := testCluster(t, 2, 128)
	s, err := sched.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var specs []workload.StreamSpec
	for i := 0; i < 12; i++ {
		specs = append(specs, workload.StreamSpec{
			Name:   "t",
			Node:   i % 2,
			Target: -1,
			// Tenant traffic spans the three foreground classes; Accel
			// is device-side ISP traffic and Background is FTL
			// housekeeping, both off-limits to host streams.
			Class:   sched.Class(i % int(sched.Accel)),
			Pattern: workload.Pattern(i % 4),
			Seed:    uint64(100 + i),
		})
	}
	res, err := workload.RunClosedLoop(s, c, specs, 128, 4, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	if want := int64(12 * 24); res.Completed != want {
		t.Fatalf("completed %d, want %d", res.Completed, want)
	}
	return s.Snapshot(), c.Eng.Now()
}

// TestDeterminism: the same configuration and seeds must reproduce
// identical per-class latency distributions and an identical final
// virtual clock.
func TestDeterminism(t *testing.T) {
	s1, t1 := runMix(t, sched.DefaultConfig())
	s2, t2 := runMix(t, sched.DefaultConfig())
	if t1 != t2 {
		t.Fatalf("virtual end times differ: %v vs %v", t1, t2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%+v\nvs\n%+v", s1, s2)
	}
}

// TestBackpressureSaturation: submissions beyond the admission queue
// depth must be rejected with ErrBackpressure, the queue must never
// exceed its configured depth, and admitted requests must complete.
func TestBackpressureSaturation(t *testing.T) {
	c := testCluster(t, 1, 64)
	cfg := sched.Config{QueueDepth: 8, MaxInflight: 2, BatchSize: 2, AgingRounds: 4, Coalesce: false}
	s, err := sched.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.NewStream("sat", 0, sched.Batch)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	rejected := 0
	// Submit synchronously, without running the engine: nothing can
	// drain, so exactly QueueDepth admissions succeed.
	for i := 0; i < 50; i++ {
		a := core.LinearPage(c.Params, 0, i)
		err := st.Read(a, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			completed++
		})
		if err == sched.ErrBackpressure {
			rejected++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if got := s.QueueLen(0); got > cfg.QueueDepth {
			t.Fatalf("queue length %d exceeds depth %d", got, cfg.QueueDepth)
		}
	}
	if rejected != 50-cfg.QueueDepth {
		t.Fatalf("rejected %d, want %d", rejected, 50-cfg.QueueDepth)
	}
	c.Run()
	if completed != cfg.QueueDepth {
		t.Fatalf("completed %d, want %d", completed, cfg.QueueDepth)
	}
	snap := s.Snapshot()
	if snap.PeakQueue != cfg.QueueDepth {
		t.Fatalf("peak queue %d, want %d", snap.PeakQueue, cfg.QueueDepth)
	}
	if snap.Rejected != int64(rejected) {
		t.Fatalf("snapshot rejected %d, want %d", snap.Rejected, rejected)
	}
	// The queue drained: the next submission is admitted again.
	if err := st.Read(core.LinearPage(c.Params, 0, 0), func(_ []byte, _ error) {}); err != nil {
		t.Fatalf("post-drain submission rejected: %v", err)
	}
	c.Run()
}

// TestPriorityInversionRegression: with batch traffic saturating the
// node, realtime requests must still cut the line — their p99 stays
// below the batch class's p50. This is the QoS guard against priority
// inversion through the shared admission queue.
func TestPriorityInversionRegression(t *testing.T) {
	c := testCluster(t, 1, 256)
	// Narrow the device window so contention lands in the admission
	// queue, where class priority acts: beyond the window the device's
	// own FIFO serves requests in arrival order regardless of class.
	cfg := sched.DefaultConfig()
	cfg.MaxInflight = 32
	s, err := sched.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := []workload.StreamSpec{
		{Name: "rt", Node: 0, Target: 0, Class: sched.Realtime, Pattern: workload.Uniform, Seed: 1},
	}
	for i := 0; i < 30; i++ {
		specs = append(specs, workload.StreamSpec{
			Name: "bulk", Node: 0, Target: 0, Class: sched.Batch,
			Pattern: workload.Scan, Seed: uint64(10 + i),
		})
	}
	res, err := workload.RunClosedLoop(s, c, specs, 256, 8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	snap := s.Snapshot()
	var rt, bulk sched.ClassSnapshot
	for _, cs := range snap.Classes {
		switch cs.Class {
		case "realtime":
			rt = cs
		case "batch":
			bulk = cs
		}
	}
	if rt.Ops == 0 || bulk.Ops == 0 {
		t.Fatalf("missing samples: rt=%d bulk=%d", rt.Ops, bulk.Ops)
	}
	if rt.P99Us >= bulk.P50Us {
		t.Fatalf("priority inversion: realtime p99 %.1fus >= batch p50 %.1fus", rt.P99Us, bulk.P50Us)
	}
}

// TestAgingPreventsStarvation: a continuous realtime flood must not
// starve batch-class requests forever; the aging escape hatch
// guarantees them slots.
func TestAgingPreventsStarvation(t *testing.T) {
	c := testCluster(t, 1, 64)
	s, err := sched.New(c, sched.Config{
		QueueDepth: 256, MaxInflight: 8, BatchSize: 4, AgingRounds: 4, Coalesce: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := s.NewStream("flood", 0, sched.Realtime)
	bulk, _ := s.NewStream("bulk", 0, sched.Batch)

	// Realtime flood: every completion immediately resubmits, so the
	// realtime queue is never empty.
	rng := sim.NewRNG(3)
	deadline := 50 * sim.Millisecond
	var pump func()
	pump = func() {
		if c.Eng.Now() >= deadline {
			return
		}
		a := core.LinearPage(c.Params, 0, rng.Intn(64))
		if err := rt.Read(a, func(_ []byte, _ error) { pump() }); err != nil {
			c.Eng.After(10*sim.Microsecond, pump)
		}
	}
	for i := 0; i < 32; i++ {
		pump()
	}
	bulkDone := 0
	for i := 0; i < 5; i++ {
		if err := bulk.Read(core.LinearPage(c.Params, 0, i), func(_ []byte, err error) {
			if err == nil {
				bulkDone++
			}
		}); err != nil {
			t.Fatalf("bulk submit: %v", err)
		}
	}
	c.Eng.RunWhile(func() bool { return bulkDone < 5 && c.Eng.Now() < deadline })
	if bulkDone < 5 {
		t.Fatalf("batch class starved: only %d/5 completed under realtime flood", bulkDone)
	}
	c.Run()
}

// TestCoalescing: queued duplicate reads ride one flash operation and
// every waiter still gets the data.
func TestCoalescing(t *testing.T) {
	c := testCluster(t, 1, 64)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.NewStream("dup", 0, sched.Interactive)
	a := core.LinearPage(c.Params, 0, 5)
	got := 0
	var first []byte
	for i := 0; i < 6; i++ {
		err := st.Read(a, func(data []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			if first == nil {
				first = data
			} else if !reflect.DeepEqual(first, data) {
				t.Error("coalesced readers saw different data")
			}
			got++
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	c.Run()
	if got != 6 {
		t.Fatalf("%d callbacks fired, want 6", got)
	}
	snap := s.Snapshot()
	if snap.Coalesced != 5 {
		t.Fatalf("coalesced %d, want 5", snap.Coalesced)
	}
	if snap.TotalOps != 6 {
		t.Fatalf("total ops %d, want 6 (followers count as ops)", snap.TotalOps)
	}
}

// TestWriteFencesCoalescing: a read admitted after a write to the
// same page must NOT coalesce onto a read queued before the write —
// coalescing would guarantee it pre-write data. (The scheduler does
// not promise general read-after-write ordering; this closes the one
// route where staleness is certain.)
func TestWriteFencesCoalescing(t *testing.T) {
	c := testCluster(t, 1, 64)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.NewStream("rw", 0, sched.Batch)
	// An erased page past the seeded region, block-aligned.
	blockSpan := c.Params.Geometry.Buses * c.Params.CardsPerNode * c.Params.Geometry.PagesPerBlock
	a := core.LinearPage(c.Params, 0, blockSpan)
	fired := 0
	any := func(_ []byte, _ error) { fired++ } // device-level errors irrelevant here
	if err := st.Read(a, any); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(a, make([]byte, c.Params.PageSize()), func(_ error) { fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := st.Read(a, any); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Coalesced; got != 0 {
		t.Fatalf("read coalesced across an intervening write (%d coalesced)", got)
	}
	c.Run()
	if fired != 3 {
		t.Fatalf("%d callbacks fired, want 3", fired)
	}
}

// TestRouterIntegration: with the scheduler attached as the cluster's
// host router, legacy Node.HostRead/HostWrite traffic flows through
// the scheduler's admission path.
func TestRouterIntegration(t *testing.T) {
	c := testCluster(t, 2, 64)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachRouter(sched.Interactive); err != nil {
		t.Fatal(err)
	}
	node := c.Node(0)
	reads := 0
	for i := 0; i < 4; i++ {
		a := core.LinearPage(c.Params, i%2, i)
		node.HostRead(a, core.PathHF, nil, func(data []byte, err error) {
			if err != nil {
				t.Errorf("routed read: %v", err)
			}
			if len(data) != c.Params.PageSize() {
				t.Errorf("routed read returned %d bytes", len(data))
			}
			reads++
		})
	}
	// A routed write: append at a fresh block-aligned page.
	blockSpan := c.Params.Geometry.Buses * c.Params.CardsPerNode * c.Params.Geometry.PagesPerBlock
	wa := core.LinearPage(c.Params, 0, blockSpan)
	wrote := false
	node.HostWrite(wa, make([]byte, c.Params.PageSize()), func(err error) {
		if err != nil {
			t.Errorf("routed write: %v", err)
		}
		wrote = true
	})
	c.Run()
	if reads != 4 || !wrote {
		t.Fatalf("reads=%d wrote=%v", reads, wrote)
	}
	snap := s.Snapshot()
	if snap.TotalOps != 5 {
		t.Fatalf("scheduler saw %d ops, want 5 (router not engaged?)", snap.TotalOps)
	}
	s.DetachRouter()
	// Detached: traffic no longer reaches the scheduler.
	done := false
	node.HostRead(core.LinearPage(c.Params, 0, 1), core.PathHF, nil, func(_ []byte, err error) {
		if err != nil {
			t.Errorf("direct read: %v", err)
		}
		done = true
	})
	c.Run()
	if !done {
		t.Fatal("direct read did not complete")
	}
	if got := s.Snapshot().TotalOps; got != 5 {
		t.Fatalf("scheduler ops grew to %d after detach", got)
	}
}

// TestBatchingAmortization: the same workload must finish sooner (in
// virtual time) with batched doorbells than with one doorbell per
// request — the headline throughput claim of the scheduler.
func TestBatchingAmortization(t *testing.T) {
	batched := sched.DefaultConfig()
	nobatch := sched.DefaultConfig()
	nobatch.BatchSize = 1
	_, tBatched := runMix(t, batched)
	_, tNoBatch := runMix(t, nobatch)
	if !(float64(tBatched) < 0.8*float64(tNoBatch)) {
		t.Fatalf("batching not measurably faster: batched %v, nobatch %v", tBatched, tNoBatch)
	}
}

// TestStreamErrors: closed streams and invalid arguments are rejected.
func TestStreamErrors(t *testing.T) {
	c := testCluster(t, 1, 16)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewStream("x", 5, sched.Batch); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := s.NewStream("x", 0, sched.Class(9)); err == nil {
		t.Error("out-of-range class accepted")
	}
	st, _ := s.NewStream("x", 0, sched.Batch)
	st.Close()
	if err := st.Read(core.LinearPage(c.Params, 0, 0), nil); err != sched.ErrClosed {
		t.Errorf("read on closed stream: %v", err)
	}
	if _, err := sched.New(c, sched.Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

// runBackgroundDrain drives a fixed foreground read load plus nBG
// Background reads at a pinned GC urgency, and returns the virtual
// time at which the last Background op completed.
func runBackgroundDrain(t *testing.T, cfg sched.Config, urgency float64, nBG int) sim.Time {
	t.Helper()
	c := testCluster(t, 1, 128)
	s, err := sched.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGCUrgency(0, urgency)
	fg, err := s.NewStream("fg", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := s.NewStream("bg", 0, sched.Background)
	if err != nil {
		t.Fatal(err)
	}
	// Closed-loop foreground: 8 outstanding interactive reads for the
	// whole run, so the foreground queue is almost never empty.
	rng := sim.NewRNG(11)
	fgLeft := 400
	var issueFG func()
	issueFG = func() {
		if fgLeft == 0 {
			return
		}
		fgLeft--
		if err := fg.Read(core.LinearPage(c.Params, 0, rng.Intn(128)), func(_ []byte, err error) {
			if err != nil {
				t.Errorf("fg read: %v", err)
			}
			issueFG()
		}); err != nil {
			t.Fatalf("fg admit: %v", err)
		}
	}
	for i := 0; i < 8; i++ {
		issueFG()
	}
	var lastBG sim.Time
	bgDone := 0
	for i := 0; i < nBG; i++ {
		if err := bg.Read(core.LinearPage(c.Params, 0, i), func(_ []byte, err error) {
			if err != nil {
				t.Errorf("bg read: %v", err)
			}
			bgDone++
			lastBG = c.Eng.Now()
		}); err != nil {
			t.Fatalf("bg admit: %v", err)
		}
	}
	c.Run()
	if bgDone != nBG {
		t.Fatalf("background completed %d/%d: deferral starved it outright", bgDone, nBG)
	}
	return lastBG
}

// TestBackgroundTokenBudget: under a busy foreground, Background work
// at zero urgency must trickle (deferred to an inflight share of one),
// drain much faster once urgency is critical, and never starve
// completely. GC-oblivious dispatch (GCDefer off) must behave like
// critical urgency.
func TestBackgroundTokenBudget(t *testing.T) {
	cfg := sched.DefaultConfig()
	cfg.MaxInflight = 32
	cfg.BatchSize = 8
	tIdle := runBackgroundDrain(t, cfg, 0.0, 64)
	tCrit := runBackgroundDrain(t, cfg, 1.0, 64)
	if !(float64(tCrit) < 0.5*float64(tIdle)) {
		t.Fatalf("urgency escalation did not speed background drain: idle %v, critical %v", tIdle, tCrit)
	}
	oblivious := cfg
	oblivious.GCDefer = false
	tObl := runBackgroundDrain(t, oblivious, 0.0, 64)
	if !(float64(tObl) < 0.5*float64(tIdle)) {
		t.Fatalf("GC-oblivious dispatch should flood like critical urgency: oblivious %v, deferred %v", tObl, tIdle)
	}
}

// TestBackgroundErase: erases admitted on a Background stream complete
// through the batched host path and are never coalesced with reads.
func TestBackgroundErase(t *testing.T) {
	c := testCluster(t, 1, 64)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg, err := s.NewStream("gc", 0, sched.Background)
	if err != nil {
		t.Fatal(err)
	}
	// Erase a block in the unseeded tail of the card so no seeded data
	// is touched.
	addr := core.LinearPage(c.Params, 0, core.PagesPerNode(c.Params)-1)
	done := false
	if err := bg.Erase(addr, func(err error) {
		if err != nil {
			t.Errorf("erase: %v", err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if !done {
		t.Fatal("erase never completed")
	}
	snap := s.Snapshot()
	for _, cs := range snap.Classes {
		if cs.Class == "background" && cs.Ops != 1 {
			t.Fatalf("background ops = %d, want 1", cs.Ops)
		}
	}
}
