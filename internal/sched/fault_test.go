package sched_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/sched"
)

// TestDeadCardErrorPropagates: a flash fault below the scheduler must
// reach the stream's completion as the typed device error — admitted,
// dispatched, and completed like any other request, never swallowed or
// turned into a hang. This is the sched link of the stack-wide error
// contract (nand -> flashctl -> core -> sched -> volume).
func TestDeadCardErrorPropagates(t *testing.T) {
	c := testCluster(t, 1, 64)
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.NewStream("t", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the page reads fine while the card is alive.
	addr := core.LinearPage(c.Params, 0, 3)
	alive := errors.New("not completed")
	if err := st.Read(addr, func(_ []byte, err error) { alive = err }); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if alive != nil {
		t.Fatalf("healthy read failed: %v", alive)
	}

	c.Node(0).Card(addr.Card).Fail()
	done := 0
	for i := 0; i < 8; i++ {
		a := core.LinearPage(c.Params, 0, i)
		if err := st.Read(a, func(_ []byte, err error) {
			done++
			if !errors.Is(err, nand.ErrDead) {
				t.Errorf("read %v on dead card: err = %v, want nand.ErrDead", a, err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Run()
	if done != 8 {
		t.Fatalf("%d of 8 reads completed on the dead card; the rest were dropped", done)
	}
	// The failures still count as completed scheduler work: they were
	// admitted and dispatched; only the device outcome differs.
	if ops := s.Snapshot().TotalOps; ops < 9 {
		t.Fatalf("scheduler counted %d ops, want >= 9", ops)
	}
}
