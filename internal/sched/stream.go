package sched

import (
	"fmt"

	"repro/internal/core"
)

// Stream is one client's admission handle: a named, QoS-classed
// sequence of requests issued from one node's host. Many streams are
// open concurrently; the scheduler multiplexes them onto the node's
// admission queue and batches them at the device doorbell.
type Stream struct {
	s      *Scheduler
	name   string
	node   int
	class  Class
	closed bool

	// Submitted counts operations this stream admitted successfully.
	Submitted int64
}

// NewStream opens a stream issuing from node's host at the given QoS
// class. The stream may address any page in the cluster; remote pages
// ride the integrated storage network exactly like Node.HostRead.
func (s *Scheduler) NewStream(name string, node int, class Class) (*Stream, error) {
	if node < 0 || node >= len(s.nodes) {
		return nil, fmt.Errorf("sched: node %d out of range [0,%d)", node, len(s.nodes))
	}
	if class >= NumClasses {
		return nil, fmt.Errorf("sched: class %d out of range", class)
	}
	if class == Accel {
		return nil, fmt.Errorf("sched: %v requests enter through AccelStream, not host streams", class)
	}
	return &Stream{s: s, name: name, node: node, class: class}, nil
}

// Name returns the stream name.
func (st *Stream) Name() string { return st.name }

// Class returns the stream's QoS class.
func (st *Stream) Class() Class { return st.class }

// Node returns the index of the node the stream issues from.
func (st *Stream) Node() int { return st.node }

// Read admits a page read. cb fires when the page has landed in host
// memory (or failed). ErrBackpressure means the request was NOT
// admitted and cb will never fire: back off and retry.
func (st *Stream) Read(a core.PageAddr, cb func(data []byte, err error)) error {
	if st.closed {
		return ErrClosed
	}
	r := st.s.getReq()
	r.class, r.statClass, r.addr, r.enq, r.rcb = st.class, st.class, a, st.s.eng.Now(), cb
	if err := st.s.nodes[st.node].admit(r); err != nil {
		st.s.putReq(r)
		return err
	}
	st.Submitted++
	return nil
}

// Write admits a page write. The payload is snapshotted at admission,
// so the caller may reuse its buffer as soon as Write returns.
func (st *Stream) Write(a core.PageAddr, data []byte, cb func(err error)) error {
	if st.closed {
		return ErrClosed
	}
	r := st.s.getReq()
	r.class = st.class
	r.statClass = st.class
	r.addr = a
	r.write = true
	r.data = append(r.data[:0], data...)
	r.enq = st.s.eng.Now()
	r.wcb = cb
	if err := st.s.nodes[st.node].admit(r); err != nil {
		st.s.putReq(r)
		return err
	}
	st.Submitted++
	return nil
}

// Erase admits a block erase for the block containing a. It is the
// admission path for FTL garbage-collection erases (normally on a
// Background-class stream); like writes it is never coalesced and
// fences nothing — the FTL guarantees no reads target the block.
func (st *Stream) Erase(a core.PageAddr, cb func(err error)) error {
	if st.closed {
		return ErrClosed
	}
	r := st.s.getReq()
	r.class, r.statClass, r.addr, r.erase, r.enq, r.wcb = st.class, st.class, a, true, st.s.eng.Now(), cb
	if err := st.s.nodes[st.node].admit(r); err != nil {
		st.s.putReq(r)
		return err
	}
	st.Submitted++
	return nil
}

// Close marks the stream closed; further submissions fail with
// ErrClosed. In-flight requests still complete.
func (st *Stream) Close() { st.closed = true }
