// Package ftl implements the full flash translation layer that BlueDBM
// runs in the host block device driver (paper §4): because the hardware
// exposes raw error-corrected flash, logical-to-physical mapping,
// garbage collection, wear leveling and bad-block management live in
// software, where they can be smarter than an in-device controller
// ("similar to Fusion IO's driver").
//
// It is a page-mapped FTL: every logical page number (LPN) maps to a
// physical page (PPN); writes go to a moving frontier; greedy garbage
// collection recycles the block with the fewest valid pages; periodic
// wear-leveling passes recycle the coldest block instead so erase wear
// stays even.
package ftl

import (
	"errors"
	"fmt"

	"repro/internal/flashserver"
	"repro/internal/nand"
)

// FTL errors.
var (
	ErrUnmapped   = errors.New("ftl: logical page not written")
	ErrOutOfRange = errors.New("ftl: logical page out of range")
	ErrDataSize   = errors.New("ftl: data must be exactly one page")
	ErrNoSpace    = errors.New("ftl: device full (no free blocks and nothing to collect)")
)

// Config tunes the FTL.
type Config struct {
	// OverProvision is the fraction of physical capacity hidden from
	// the logical space and reserved for GC headroom.
	OverProvision float64
	// GCLowWater starts garbage collection when the free-block pool
	// drops to this size.
	GCLowWater int
	// WearLevelEvery runs a wear-leveling pass instead of a greedy pass
	// every N collections (0 disables static wear leveling).
	WearLevelEvery int
}

// DefaultConfig uses typical SSD numbers.
func DefaultConfig() Config {
	return Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 16}
}

type pageState uint8

const (
	pageFree pageState = iota
	pageValid
	pageInvalid
)

type blockInfo struct {
	valid    int // valid pages
	written  int // programmed pages (frontier within block)
	erases   int64
	bad      bool
	isActive bool
}

// FTL drives one flash card through a flashserver interface.
type FTL struct {
	iface *flashserver.Iface
	geo   nand.Geometry
	cfg   Config

	lpns      int   // logical space size
	l2p       []int // lpn -> ppn, -1 if unmapped
	p2l       []int // ppn -> lpn, -1 if none
	pageState []pageState
	blocks    []blockInfo
	freePool  []int // free block indices

	active     int // current frontier block, -1 if none
	gcActive   bool
	gcCount    int64
	pendingOps []func() // writes queued behind GC

	// stats
	HostWrites    int64
	HostReads     int64
	FlashPrograms int64
	FlashErases   int64
	GCMoves       int64
	BadBlocks     int64
}

// New builds an FTL over iface with the given card geometry.
func New(iface *flashserver.Iface, geo nand.Geometry, cfg Config) (*FTL, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.OverProvision < 0.02 || cfg.OverProvision >= 0.9 {
		return nil, fmt.Errorf("ftl: over-provisioning %.2f out of range [0.02,0.9)", cfg.OverProvision)
	}
	if cfg.GCLowWater < 1 {
		cfg.GCLowWater = 1
	}
	total := geo.TotalPages()
	f := &FTL{
		iface:     iface,
		geo:       geo,
		cfg:       cfg,
		lpns:      int(float64(total) * (1 - cfg.OverProvision)),
		l2p:       make([]int, total),
		p2l:       make([]int, total),
		pageState: make([]pageState, total),
		blocks:    make([]blockInfo, geo.Buses*geo.ChipsPerBus*geo.BlocksPerChip),
		active:    -1,
	}
	for i := range f.l2p {
		f.l2p[i] = -1
		f.p2l[i] = -1
	}
	for b := range f.blocks {
		f.freePool = append(f.freePool, b)
	}
	return f, nil
}

// LogicalPages returns the size of the logical space.
func (f *FTL) LogicalPages() int { return f.lpns }

// WriteAmplification returns flash programs / host writes (1.0 = none).
func (f *FTL) WriteAmplification() float64 {
	if f.HostWrites == 0 {
		return 0
	}
	return float64(f.FlashPrograms) / float64(f.HostWrites)
}

// FreeBlocks returns the current free pool size.
func (f *FTL) FreeBlocks() int { return len(f.freePool) }

// blockOf returns the block index containing a ppn.
func (f *FTL) blockOf(ppn int) int { return ppn / f.geo.PagesPerBlock }

// addrOf converts a linear ppn to a card address.
func (f *FTL) addrOf(ppn int) nand.Addr {
	p := ppn % f.geo.PagesPerBlock
	b := ppn / f.geo.PagesPerBlock
	blk := b % f.geo.BlocksPerChip
	b /= f.geo.BlocksPerChip
	chip := b % f.geo.ChipsPerBus
	bus := b / f.geo.ChipsPerBus
	return nand.Addr{Bus: bus, Chip: chip, Block: blk, Page: p}
}

// blockAddr returns the address of a block (page 0).
func (f *FTL) blockAddr(blk int) nand.Addr {
	a := f.addrOf(blk * f.geo.PagesPerBlock)
	a.Page = 0
	return a
}

// Read fetches a logical page.
func (f *FTL) Read(lpn int, cb func(data []byte, err error)) {
	if lpn < 0 || lpn >= f.lpns {
		cb(nil, fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	ppn := f.l2p[lpn]
	if ppn < 0 {
		cb(nil, fmt.Errorf("%w: %d", ErrUnmapped, lpn))
		return
	}
	f.HostReads++
	f.iface.ReadPhysical(f.addrOf(ppn), cb)
}

// Write stores a logical page, remapping it to a fresh physical page.
func (f *FTL) Write(lpn int, data []byte, cb func(err error)) {
	if lpn < 0 || lpn >= f.lpns {
		cb(fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	if len(data) != f.geo.PageSize {
		cb(fmt.Errorf("%w: got %d want %d", ErrDataSize, len(data), f.geo.PageSize))
		return
	}
	f.HostWrites++
	buf := make([]byte, len(data))
	copy(buf, data)
	f.enqueue(func() { f.doWrite(lpn, buf, cb) })
}

// Trim invalidates a logical page without writing.
func (f *FTL) Trim(lpn int) error {
	if lpn < 0 || lpn >= f.lpns {
		return fmt.Errorf("%w: %d", ErrOutOfRange, lpn)
	}
	if ppn := f.l2p[lpn]; ppn >= 0 {
		f.invalidate(ppn)
		f.l2p[lpn] = -1
	}
	return nil
}

// enqueue runs op now, or after the in-progress GC drains.
func (f *FTL) enqueue(op func()) {
	if f.gcActive {
		f.pendingOps = append(f.pendingOps, op)
		return
	}
	op()
}

func (f *FTL) doWrite(lpn int, data []byte, cb func(err error)) {
	f.allocAndProgram(data, func(finalPPN int, err error) {
		if err != nil {
			cb(err)
			return
		}
		// Power-safe ordering: the new copy is durable before the old
		// mapping is dropped.
		if old := f.l2p[lpn]; old >= 0 {
			f.invalidate(old)
		}
		f.l2p[lpn] = finalPPN
		f.p2l[finalPPN] = lpn
		f.pageState[finalPPN] = pageValid
		f.blocks[f.blockOf(finalPPN)].valid++
		cb(nil)
	})
}

// allocAndProgram takes a frontier page (starting GC first if needed)
// and programs data into it, retrying on bad blocks.
func (f *FTL) allocAndProgram(data []byte, cb func(finalPPN int, err error)) {
	ppn, err := f.allocPage(func() { f.allocAndProgram(data, cb) })
	if err != nil {
		cb(-1, err)
		return
	}
	if ppn < 0 {
		return // GC started; this op was requeued
	}
	f.program(ppn, data, cb)
}

// program writes data at ppn, transparently retrying elsewhere when
// the block turns out bad.
func (f *FTL) program(ppn int, data []byte, cb func(finalPPN int, err error)) {
	f.FlashPrograms++
	f.iface.WritePhysical(f.addrOf(ppn), data, func(err error) {
		if err == nil {
			cb(ppn, nil)
			return
		}
		if errors.Is(err, nand.ErrBadBlock) {
			f.retireBlock(f.blockOf(ppn))
			f.allocAndProgram(data, cb)
			return
		}
		cb(-1, err)
	})
}

// invalidate marks a physical page dead.
func (f *FTL) invalidate(ppn int) {
	if f.pageState[ppn] == pageValid {
		f.blocks[f.blockOf(ppn)].valid--
	}
	f.pageState[ppn] = pageInvalid
	f.p2l[ppn] = -1
}

// retireBlock permanently removes a block from service.
func (f *FTL) retireBlock(blk int) {
	if !f.blocks[blk].bad {
		f.blocks[blk].bad = true
		f.BadBlocks++
		if f.active == blk {
			f.active = -1
		}
	}
}

// allocPage returns the next frontier ppn, or (-1, nil) if GC had to
// start first (retry is the op to requeue behind the GC).
func (f *FTL) allocPage(retry func()) (int, error) {
	for {
		if f.active >= 0 {
			b := &f.blocks[f.active]
			if b.bad {
				f.active = -1
				continue
			}
			if b.written < f.geo.PagesPerBlock {
				ppn := f.active*f.geo.PagesPerBlock + b.written
				b.written++
				return ppn, nil
			}
			b.isActive = false
			f.active = -1
		}
		// Need a new active block.
		if len(f.freePool) <= f.cfg.GCLowWater && !f.gcActive {
			if f.victimExists() {
				if retry != nil {
					f.pendingOps = append(f.pendingOps, retry)
				}
				f.startGC()
				return -1, nil
			}
			if len(f.freePool) == 0 {
				return 0, ErrNoSpace
			}
		}
		if len(f.freePool) == 0 {
			return 0, ErrNoSpace
		}
		f.active = f.popLeastWorn()
		ab := &f.blocks[f.active]
		ab.isActive = true
		ab.written = 0
		ab.valid = 0
	}
}

// popLeastWorn takes the free block with the fewest erases, spreading
// dynamic wear evenly across the pool (the allocation half of wear
// leveling; the victim-selection half is in pickVictim).
func (f *FTL) popLeastWorn() int {
	best := 0
	for i := 1; i < len(f.freePool); i++ {
		if f.blocks[f.freePool[i]].erases < f.blocks[f.freePool[best]].erases {
			best = i
		}
	}
	blk := f.freePool[best]
	f.freePool = append(f.freePool[:best], f.freePool[best+1:]...)
	return blk
}

// victimExists reports whether any sealed block could be collected.
func (f *FTL) victimExists() bool {
	return f.pickVictim() >= 0
}

// pickVictim selects the GC victim: normally the sealed block with the
// fewest valid pages; every WearLevelEvery-th collection, the sealed
// block with the lowest erase count (static wear leveling), so cold
// blocks re-enter circulation.
func (f *FTL) pickVictim() int {
	wearPass := f.cfg.WearLevelEvery > 0 && f.gcCount > 0 && f.gcCount%int64(f.cfg.WearLevelEvery) == 0
	best := -1
	for b := range f.blocks {
		bi := &f.blocks[b]
		if bi.bad || bi.isActive || bi.written < f.geo.PagesPerBlock {
			continue
		}
		if bi.valid == f.geo.PagesPerBlock && !wearPass {
			continue // nothing to gain
		}
		if best < 0 {
			best = b
			continue
		}
		if wearPass {
			if bi.erases < f.blocks[best].erases {
				best = b
			}
		} else if bi.valid < f.blocks[best].valid {
			best = b
		}
	}
	return best
}

// startGC collects one victim block, then drains queued operations.
func (f *FTL) startGC() {
	victim := f.pickVictim()
	if victim < 0 {
		f.finishGC()
		return
	}
	f.gcActive = true
	f.gcCount++
	f.relocateNext(victim, 0)
}

// relocateNext moves valid pages out of the victim, one at a time, then
// erases it.
func (f *FTL) relocateNext(victim, page int) {
	if page >= f.geo.PagesPerBlock {
		f.eraseVictim(victim)
		return
	}
	ppn := victim*f.geo.PagesPerBlock + page
	if f.pageState[ppn] != pageValid {
		f.relocateNext(victim, page+1)
		return
	}
	lpn := f.p2l[ppn]
	f.iface.ReadPhysical(f.addrOf(ppn), func(data []byte, err error) {
		if err != nil {
			// Unreadable during GC: drop the mapping (data loss would be
			// surfaced by ECC in the read path; here the page was
			// already read once by the host if it mattered).
			f.invalidate(ppn)
			if lpn >= 0 {
				f.l2p[lpn] = -1
			}
			f.relocateNext(victim, page+1)
			return
		}
		dst, aerr := f.gcAllocPage()
		if aerr != nil {
			// No room to move: abort the GC; the write that triggered
			// it will fail with ErrNoSpace on retry.
			f.finishGC()
			return
		}
		f.GCMoves++
		f.program(dst, data, func(finalPPN int, perr error) {
			if perr != nil {
				f.finishGC()
				return
			}
			f.invalidate(ppn)
			f.l2p[lpn] = finalPPN
			f.p2l[finalPPN] = lpn
			f.pageState[finalPPN] = pageValid
			f.blocks[f.blockOf(finalPPN)].valid++
			f.relocateNext(victim, page+1)
		})
	})
}

// gcAllocPage allocates a relocation target without recursing into GC.
func (f *FTL) gcAllocPage() (int, error) {
	for {
		if f.active >= 0 {
			b := &f.blocks[f.active]
			if !b.bad && b.written < f.geo.PagesPerBlock {
				ppn := f.active*f.geo.PagesPerBlock + b.written
				b.written++
				return ppn, nil
			}
			b.isActive = false
			f.active = -1
		}
		if len(f.freePool) == 0 {
			return 0, ErrNoSpace
		}
		f.active = f.popLeastWorn()
		ab := &f.blocks[f.active]
		ab.isActive = true
		ab.written = 0
		ab.valid = 0
	}
}

func (f *FTL) eraseVictim(victim int) {
	f.FlashErases++
	f.iface.Erase(f.blockAddr(victim), func(err error) {
		bi := &f.blocks[victim]
		if err != nil {
			f.retireBlock(victim)
		} else {
			bi.erases++
			bi.valid = 0
			bi.written = 0
			base := victim * f.geo.PagesPerBlock
			for p := 0; p < f.geo.PagesPerBlock; p++ {
				f.pageState[base+p] = pageFree
				f.p2l[base+p] = -1
			}
			f.freePool = append(f.freePool, victim)
		}
		f.finishGC()
	})
}

// finishGC drains operations queued while collecting.
func (f *FTL) finishGC() {
	f.gcActive = false
	ops := f.pendingOps
	f.pendingOps = nil
	for _, op := range ops {
		if f.gcActive {
			// A drained op re-triggered GC; requeue the rest.
			f.pendingOps = append(f.pendingOps, op)
			continue
		}
		op()
	}
}

// MaxEraseSkew returns max-min erase count across serviceable blocks,
// the wear-leveling quality metric.
func (f *FTL) MaxEraseSkew() int64 {
	var min, max int64 = -1, 0
	for b := range f.blocks {
		if f.blocks[b].bad {
			continue
		}
		e := f.blocks[b].erases
		if min < 0 || e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if min < 0 {
		return 0
	}
	return max - min
}

// MappingEntries returns the size of the FTL's logical-to-physical
// table. Unlike a file system's extent maps, it covers the whole
// logical space whether or not data is live — the "large DRAM"
// cost the paper attributes to in-device FTLs (§4).
func (f *FTL) MappingEntries() int { return len(f.l2p) }
