// Package ftl implements the full flash translation layer that BlueDBM
// runs in the host block device driver (paper §4): because the hardware
// exposes raw error-corrected flash, logical-to-physical mapping,
// garbage collection, wear leveling and bad-block management live in
// software, where they can be smarter than an in-device controller
// ("similar to Fusion IO's driver").
//
// It is a page-mapped FTL: every logical page number (LPN) maps to a
// physical page (PPN); writes go to a moving frontier (one frontier
// per IOTag, so concurrent streams never interleave programs inside a
// block); greedy garbage collection recycles the block with the fewest
// valid pages; periodic wear-leveling passes recycle the coldest block
// instead so erase wear stays even.
//
// Concurrency rules (all in virtual time, single-threaded):
//   - Writes proceed during an active collection while the free pool
//     stays above a reserve (their frontiers are disjoint from the
//     sealed victim); below it they queue in pendingOps and drain when
//     the victim is erased, so they can never starve the relocation
//     destination.
//   - Reads resolve their mapping at issue time and never wait for a
//     collection: relocation only copies, so a racing read still finds
//     its data at the old physical page. The one destructive step —
//     the victim erase — waits until in-flight reads against the
//     victim drain, and after relocation no mapping points into the
//     victim, so no new read can resolve there. A read can therefore
//     never land on a page the collector erases under it.
//   - A collection that cannot allocate relocation space aborts and
//     marks the FTL stalled; further allocations fail deterministically
//     with ErrNoSpace (instead of re-triggering the same doomed pass)
//     until an invalidation shrinks some victim's relocation demand.
package ftl

import (
	"errors"
	"fmt"

	"repro/internal/flashctl"
	"repro/internal/flashserver"
	"repro/internal/nand"
)

// FTL errors.
var (
	ErrUnmapped   = errors.New("ftl: logical page not written")
	ErrOutOfRange = errors.New("ftl: logical page out of range")
	ErrDataSize   = errors.New("ftl: data must be exactly one page")
	ErrNoSpace    = errors.New("ftl: device full (no free blocks and nothing to collect)")
	ErrBadTag     = errors.New("ftl: TagGC is reserved for internal GC traffic")
)

// Config tunes the FTL.
type Config struct {
	// OverProvision is the fraction of physical capacity hidden from
	// the logical space and reserved for GC headroom.
	OverProvision float64
	// GCLowWater starts garbage collection when the free-block pool
	// drops to this size.
	GCLowWater int
	// WearLevelEvery runs a wear-leveling pass instead of a greedy pass
	// every N collections (0 disables static wear leveling).
	WearLevelEvery int
	// GCPipeline is the number of relocation transfers a collection
	// keeps in flight at once (0 or 1 = sequential). Pipelining is what
	// makes an unthrottled collection monopolize the device — and what
	// the scheduler's GC token budget exists to pace.
	GCPipeline int
}

// DefaultConfig uses typical SSD numbers.
func DefaultConfig() Config {
	return Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 16, GCPipeline: 4}
}

type pageState uint8

const (
	pageFree pageState = iota
	pageValid
	pageInvalid
)

type blockInfo struct {
	valid    int // valid pages
	written  int // programmed pages (frontier within block)
	erases   int64
	bad      bool
	isActive bool
	pending  int // programs issued but not yet acknowledged
	reads    int // host reads in flight against this block
}

// gcState tracks one in-progress collection.
type gcState struct {
	victim      int
	next        int // next page index of the victim to scan
	inflight    int // outstanding relocation transfers
	aborted     bool
	relocated   bool // all valid pages moved; erase is next
	eraseIssued bool
}

// FTL drives one flash card through a Backend.
type FTL struct {
	io    Backend
	geo   nand.Geometry
	cfg   Config
	hooks Hooks

	lpns      int   // logical space size
	l2p       []int // lpn -> ppn, -1 if unmapped
	p2l       []int // ppn -> lpn, -1 if none
	pageState []pageState
	blocks    []blockInfo
	freePool  []int // min-heap of free block indices, keyed on erase count

	actives    [256]int32 // per-tag frontier block, dense by IOTag; -1 = none
	gcActive   bool       // a collection is triggered (ops queue behind it)
	gcRunning  bool       // relocation I/O has started
	gcStalled  bool       // last collection made no progress: no room to relocate
	prevWear   bool       // last collection was a wear pass (forces greedy next)
	gcst       *gcState
	gcCount    int64
	pendingOps []func() // writes queued behind GC by the reserve gate

	// stats
	HostWrites    int64
	HostReads     int64
	HostTrims     int64
	FlashPrograms int64
	FlashErases   int64
	GCMoves       int64
	GCAborts      int64
	BadBlocks     int64

	// fault stats
	ReadFaults         int64 // host reads completed with an error (any cause)
	UncorrectableReads int64 // host reads failed by ECC: data unrecoverable
	GCReadFaults       int64 // relocation reads that failed mid-collection
	LostPages          int64 // mappings dropped because their page was unreadable
}

// New builds an FTL over a flashserver interface with the given card
// geometry.
func New(iface *flashserver.Iface, geo nand.Geometry, cfg Config) (*FTL, error) {
	return NewWithBackend(IfaceBackend(iface), geo, cfg)
}

// NewWithBackend builds an FTL over an arbitrary Backend.
func NewWithBackend(io Backend, geo nand.Geometry, cfg Config) (*FTL, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.OverProvision < 0.02 || cfg.OverProvision >= 0.9 {
		return nil, fmt.Errorf("ftl: over-provisioning %.2f out of range [0.02,0.9)", cfg.OverProvision)
	}
	if cfg.GCLowWater < 1 {
		cfg.GCLowWater = 1
	}
	if cfg.GCPipeline < 1 {
		cfg.GCPipeline = 1
	}
	total := geo.TotalPages()
	f := &FTL{
		io:        io,
		geo:       geo,
		cfg:       cfg,
		lpns:      int(float64(total) * (1 - cfg.OverProvision)),
		l2p:       make([]int, total),
		p2l:       make([]int, total),
		pageState: make([]pageState, total),
		blocks:    make([]blockInfo, geo.Buses*geo.ChipsPerBus*geo.BlocksPerChip),
	}
	for i := range f.actives {
		f.actives[i] = -1
	}
	for i := range f.l2p {
		f.l2p[i] = -1
		f.p2l[i] = -1
	}
	// All blocks start with zero erases, so ascending index order is
	// already a valid min-heap.
	for b := range f.blocks {
		f.freePool = append(f.freePool, b)
	}
	return f, nil
}

// SetHooks installs GC lifecycle hooks (see Hooks).
func (f *FTL) SetHooks(h Hooks) { f.hooks = h }

// LogicalPages returns the size of the logical space.
func (f *FTL) LogicalPages() int { return f.lpns }

// PageSize returns the device's page size.
func (f *FTL) PageSize() int { return f.geo.PageSize }

// WriteAmplification returns flash programs / host writes (1.0 = none).
func (f *FTL) WriteAmplification() float64 {
	if f.HostWrites == 0 {
		return 0
	}
	return float64(f.FlashPrograms) / float64(f.HostWrites)
}

// FreeBlocks returns the current free pool size.
func (f *FTL) FreeBlocks() int { return len(f.freePool) }

// Urgency reports how badly the FTL needs its relocation work to run,
// from 0 (free pool at or above the GC low-water mark: collection is
// keeping up and can afford to be deferred) to 1 (pool dry, host
// writes about to stall). The scheduler uses it to scale the GC token
// budget, so it measures deficit below the trigger point, not pool
// fullness: while GC keeps up, relocation deserves no device share.
func (f *FTL) Urgency() float64 {
	low := f.cfg.GCLowWater
	if low < 1 {
		low = 1
	}
	u := 1 - float64(len(f.freePool))/float64(low)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

func (f *FTL) notifyUrgency() {
	if f.hooks.Urgency != nil {
		f.hooks.Urgency(f.Urgency())
	}
}

// blockOf returns the block index containing a ppn.
func (f *FTL) blockOf(ppn int) int { return ppn / f.geo.PagesPerBlock }

// addrOf converts a linear ppn to a card address.
func (f *FTL) addrOf(ppn int) nand.Addr {
	p := ppn % f.geo.PagesPerBlock
	b := ppn / f.geo.PagesPerBlock
	blk := b % f.geo.BlocksPerChip
	b /= f.geo.BlocksPerChip
	chip := b % f.geo.ChipsPerBus
	bus := b / f.geo.ChipsPerBus
	return nand.Addr{Bus: bus, Chip: chip, Block: blk, Page: p}
}

// blockAddr returns the address of a block (page 0).
func (f *FTL) blockAddr(blk int) nand.Addr {
	a := f.addrOf(blk * f.geo.PagesPerBlock)
	a.Page = 0
	return a
}

// Read fetches a logical page (tag 0).
func (f *FTL) Read(lpn int, cb func(data []byte, err error)) {
	f.ReadTagged(lpn, 0, cb)
}

// ReadTagged fetches a logical page on the given traffic tag. Reads
// never wait for garbage collection: the mapping is resolved at issue
// time, and the collector's erase — the only op that could destroy
// the resolved page — waits for in-flight reads against the victim to
// drain (see doRead/maybeErase).
func (f *FTL) ReadTagged(lpn int, tag IOTag, cb func(data []byte, err error)) {
	if lpn < 0 || lpn >= f.lpns {
		//simlint:allow hotcall (error path: allocates only on an out-of-range read, which fails the op anyway)
		cb(nil, fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	if tag == TagGC {
		cb(nil, ErrBadTag)
		return
	}
	f.doRead(lpn, tag, cb)
}

// doRead resolves the mapping and issues the flash read. Reads never
// wait for garbage collection: relocation only copies, so a read that
// races it still finds its data at the old physical page — the one
// destructive step, the victim erase, is what waits for in-flight
// reads to drain (see maybeErase). Once a page is relocated the
// mapping points at the copy, so later reads resolve away from the
// victim on their own.
func (f *FTL) doRead(lpn int, tag IOTag, cb func(data []byte, err error)) {
	ppn := f.l2p[lpn]
	if ppn < 0 {
		//simlint:allow hotcall (error path: allocates only for an unmapped page, which fails the op anyway)
		cb(nil, fmt.Errorf("%w: %d", ErrUnmapped, lpn))
		return
	}
	f.HostReads++
	blk := f.blockOf(ppn)
	f.blocks[blk].reads++
	//simlint:allow hotcall (per-read completion capture hidden under NAND latency; also prunes propagation into the backend dispatch, whose admission path carries its own hotpath annotations)
	f.io.ReadPage(f.addrOf(ppn), tag, func(data []byte, err error) {
		f.blocks[blk].reads--
		if err != nil {
			f.ReadFaults++
			if errors.Is(err, flashctl.ErrUncorrectable) {
				f.UncorrectableReads++
			}
		}
		f.maybeErase()
		cb(data, err)
	})
}

// Write stores a logical page (tag 0), remapping it to a fresh
// physical page.
func (f *FTL) Write(lpn int, data []byte, cb func(err error)) {
	f.WriteTagged(lpn, data, 0, cb)
}

// WriteTagged stores a logical page on the given traffic tag. Each tag
// writes to its own frontier block, so streams submitted through
// independently-scheduled channels keep NAND's in-order-per-block
// programming rule without cross-stream coupling.
func (f *FTL) WriteTagged(lpn int, data []byte, tag IOTag, cb func(err error)) {
	if lpn < 0 || lpn >= f.lpns {
		cb(fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	if tag == TagGC {
		cb(ErrBadTag)
		return
	}
	if len(data) != f.geo.PageSize {
		cb(fmt.Errorf("%w: got %d want %d", ErrDataSize, len(data), f.geo.PageSize))
		return
	}
	f.HostWrites++
	buf := make([]byte, len(data))
	copy(buf, data)
	f.enqueue(func() { f.doWrite(lpn, buf, tag, cb) })
}

// Trim invalidates a logical page without writing. A trim is a pure
// host-side metadata update in this FTL (the mapping lives in host
// DRAM, no flash command is issued), so there is nothing to admit
// through a scheduler — but it still changes GC economics (the
// invalidated page shrinks some victim's relocation demand), so it is
// counted (HostTrims) and surfaced through volume.Stats instead of
// being invisible to the stats deltas.
func (f *FTL) Trim(lpn int) error {
	if lpn < 0 || lpn >= f.lpns {
		return fmt.Errorf("%w: %d", ErrOutOfRange, lpn)
	}
	f.HostTrims++
	if ppn := f.l2p[lpn]; ppn >= 0 {
		f.invalidate(ppn)
		f.l2p[lpn] = -1
	}
	return nil
}

// Phys returns the physical location lpn currently maps to: the
// RFS-style physical-address query of the paper's Figure 8 (step 1),
// where host software resolves a logical extent to physical pages and
// hands the list to an in-store engine, which then streams the pages
// directly off the flash with no further host mediation. The result
// is a snapshot — it goes stale if the page is overwritten, trimmed,
// or relocated by garbage collection — so callers scan read-stable
// data (as RFS readers do) or re-query after mutation.
func (f *FTL) Phys(lpn int) (nand.Addr, error) {
	if lpn < 0 || lpn >= f.lpns {
		return nand.Addr{}, fmt.Errorf("%w: %d", ErrOutOfRange, lpn)
	}
	ppn := f.l2p[lpn]
	if ppn < 0 {
		return nand.Addr{}, fmt.Errorf("%w: %d", ErrUnmapped, lpn)
	}
	return f.addrOf(ppn), nil
}

// gcReserveBlocks is the free-block floor below which host writes
// stall behind an active collection: the last blocks are reserved as
// the relocation destination, because a write racing GC for them can
// abort the collection and wedge the device.
const gcReserveBlocks = 1

// enqueue runs a write now, or behind the in-progress GC when the
// free-block reserve demands it. Writes that proceed during a
// collection go to their own tag's frontier and cannot disturb the
// victim (relocation re-validates each page's mapping before
// installing the copy), so blocking every write for the whole
// collection would only build a post-GC program storm. Note that a
// write admitted during GC is not ordered against writes queued
// behind it — same-page racers have no ordering guarantee anywhere in
// the scheduler stack; callers that need read-your-write await
// completions.
func (f *FTL) enqueue(op func()) {
	if f.gcActive && len(f.freePool) <= gcReserveBlocks {
		f.pendingOps = append(f.pendingOps, op)
		return
	}
	op()
}

func (f *FTL) doWrite(lpn int, data []byte, tag IOTag, cb func(err error)) {
	f.allocAndProgram(data, tag, func(finalPPN int, err error) {
		if err != nil {
			cb(err)
			return
		}
		// Power-safe ordering: the new copy is durable before the old
		// mapping is dropped.
		if old := f.l2p[lpn]; old >= 0 {
			f.invalidate(old)
		}
		f.l2p[lpn] = finalPPN
		f.p2l[finalPPN] = lpn
		f.pageState[finalPPN] = pageValid
		f.blocks[f.blockOf(finalPPN)].valid++
		cb(nil)
	})
}

// allocAndProgram takes a frontier page (starting GC first if needed)
// and programs data into it, retrying on bad blocks.
func (f *FTL) allocAndProgram(data []byte, tag IOTag, cb func(finalPPN int, err error)) {
	ppn, err := f.allocPage(tag, func() { f.allocAndProgram(data, tag, cb) })
	if err != nil {
		cb(-1, err)
		return
	}
	if ppn < 0 {
		return // GC started; this op was requeued
	}
	f.program(ppn, data, tag, cb)
}

// program writes data at ppn, transparently retrying elsewhere when
// the block turns out bad.
func (f *FTL) program(ppn int, data []byte, tag IOTag, cb func(finalPPN int, err error)) {
	f.FlashPrograms++
	blk := f.blockOf(ppn)
	f.blocks[blk].pending++
	f.io.WritePage(f.addrOf(ppn), data, tag, func(err error) {
		f.blocks[blk].pending--
		if err == nil {
			// Run cb (which installs the page's mapping and validity)
			// BEFORE waking a collection that may have picked this block
			// as its victim: the relocation scan keys on pageState, and
			// starting it in the window between the program's completion
			// and its metadata update would treat this page as dead —
			// the victim erase would then destroy it while the mapping
			// (installed moments later) points at freed flash.
			cb(ppn, nil)
			f.maybeBeginGC()
			return
		}
		if errors.Is(err, nand.ErrBadBlock) {
			f.retireBlock(blk)
			// A collection waiting on this block's pending count can
			// proceed now (the page never became valid).
			f.maybeBeginGC()
			// GC relocation retries must not route through allocPage:
			// its queue-behind-GC branches would park the retry in
			// pendingOps behind the very collection waiting on this
			// callback. Re-allocate on the GC path and let a no-space
			// failure abort the pass instead.
			if tag == TagGC {
				dst, aerr := f.gcAllocPage()
				if aerr != nil {
					cb(-1, aerr)
					return
				}
				f.program(dst, data, TagGC, cb)
				return
			}
			f.allocAndProgram(data, tag, cb)
			return
		}
		cb(-1, err)
		f.maybeBeginGC()
	})
}

// invalidate marks a physical page dead.
func (f *FTL) invalidate(ppn int) {
	if f.pageState[ppn] == pageValid {
		f.blocks[f.blockOf(ppn)].valid--
		// A stalled FTL aborted its last collection for lack of
		// relocation space; dropping a valid page shrinks some
		// victim's relocation demand (a zero-valid victim needs none
		// at all), so collection is worth retrying. If it still cannot
		// fit, it re-aborts and re-stalls — progress requires another
		// invalidation, so this cannot loop.
		f.gcStalled = false
	}
	f.pageState[ppn] = pageInvalid
	f.p2l[ppn] = -1
}

// retireBlock permanently removes a block from service, clearing any
// frontier that pointed at it so no stale active state survives.
func (f *FTL) retireBlock(blk int) {
	bi := &f.blocks[blk]
	if bi.bad {
		return
	}
	bi.bad = true
	bi.isActive = false
	f.BadBlocks++
	for tag, a := range f.actives {
		if a == int32(blk) {
			f.actives[tag] = -1
		}
	}
}

// allocPage returns the next frontier ppn for tag, or (-1, nil) if GC
// had to start first (retry is the op to requeue behind the GC).
func (f *FTL) allocPage(tag IOTag, retry func()) (int, error) {
	for {
		if blk := int(f.actives[tag]); blk >= 0 {
			b := &f.blocks[blk]
			if b.bad {
				f.actives[tag] = -1
				continue
			}
			if b.written < f.geo.PagesPerBlock {
				ppn := blk*f.geo.PagesPerBlock + b.written
				b.written++
				return ppn, nil
			}
			b.isActive = false
			f.actives[tag] = -1
		}
		// Need a new frontier block. A stalled FTL (last collection
		// found no room to relocate) must not re-trigger the same
		// doomed pass: only an erase or an invalidation can change the
		// outcome, so keep allocating from the pool and fail when it
		// runs dry.
		if len(f.freePool) <= f.cfg.GCLowWater && !f.gcActive && !f.gcStalled {
			wear := f.wearPassDue()
			if victim := f.pickVictim(wear); victim >= 0 {
				// Queue the retry before starting: with a synchronous
				// backend the whole collection (and its pendingOps
				// drain) can complete inside beginGC.
				if retry != nil {
					f.pendingOps = append(f.pendingOps, retry)
				}
				f.beginGC(victim, wear)
				return -1, nil
			}
		}
		// While a collection is in flight, ops that reached this point
		// past the enqueue reserve gate (bad-block retries, writes
		// admitted just before the pool dropped) must neither consume
		// the reserve the collection's relocation needs nor see a
		// transient "device full": queue them behind the collection.
		// ErrNoSpace is then only ever returned with no collection in
		// flight — deterministically.
		if f.gcActive && len(f.freePool) <= gcReserveBlocks && retry != nil {
			f.pendingOps = append(f.pendingOps, retry)
			return -1, nil
		}
		if len(f.freePool) == 0 {
			return 0, ErrNoSpace
		}
		blk := f.popLeastWorn()
		f.actives[tag] = int32(blk)
		ab := &f.blocks[blk]
		ab.isActive = true
		ab.written = 0
		ab.valid = 0
	}
}

// --- free pool: min-heap keyed on erase count ------------------------

// freeLess orders the heap by erase count, block index as the
// deterministic tie-break. Heap invariant: a block's erase count
// never changes while it sits in freePool — erases increment only in
// eraseVictim, immediately before pushFree re-inserts the block.
func (f *FTL) freeLess(a, b int) bool {
	ea, eb := f.blocks[a].erases, f.blocks[b].erases
	if ea != eb {
		return ea < eb
	}
	return a < b
}

// pushFree returns a block to the free pool.
func (f *FTL) pushFree(blk int) {
	f.freePool = append(f.freePool, blk)
	i := len(f.freePool) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !f.freeLess(f.freePool[i], f.freePool[parent]) {
			break
		}
		f.freePool[i], f.freePool[parent] = f.freePool[parent], f.freePool[i]
		i = parent
	}
	f.notifyUrgency()
}

// popLeastWorn takes the free block with the fewest erases, spreading
// dynamic wear evenly across the pool (the allocation half of wear
// leveling; the victim-selection half is in pickVictim). The pool is a
// min-heap, so this is O(log n) instead of the old linear scan that
// ran on every frontier-block allocation.
func (f *FTL) popLeastWorn() int {
	blk := f.freePool[0]
	last := len(f.freePool) - 1
	f.freePool[0] = f.freePool[last]
	f.freePool = f.freePool[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && f.freeLess(f.freePool[l], f.freePool[best]) {
			best = l
		}
		if r < last && f.freeLess(f.freePool[r], f.freePool[best]) {
			best = r
		}
		if best == i {
			break
		}
		f.freePool[i], f.freePool[best] = f.freePool[best], f.freePool[i]
		i = best
	}
	f.notifyUrgency()
	return blk
}

// wearPassDue reports whether the next collection should be a static
// wear-leveling pass. Wear passes may pick an all-valid victim that
// reclaims zero net pages, so they are gated: at least one free block
// (a full block of destination always fits an all-valid victim; with
// the pool dry the pass would abort where a greedy victim might still
// fit the frontier remainder), and never two in a row — the previous
// collection must have been a greedy, progress-making pass. Without
// the alternation a wear-heavy configuration collects cold all-valid
// blocks forever and no write can ever allocate. The gate is >= 1,
// not 2, so the knob stays live at GCLowWater: 1, where collections
// only ever trigger with zero or one free block.
func (f *FTL) wearPassDue() bool {
	return f.cfg.WearLevelEvery > 0 && f.gcCount > 0 &&
		f.gcCount%int64(f.cfg.WearLevelEvery) == 0 &&
		len(f.freePool) >= 1 && !f.prevWear
}

// pickVictim selects the GC victim: normally the sealed block with the
// fewest valid pages; on a wear pass, the sealed block with the lowest
// erase count (static wear leveling), so cold blocks re-enter
// circulation. A sealed block may still have unacknowledged programs
// (bursty admission); it is eligible, but relocation waits for them to
// drain (see maybeBeginGC) so no outstanding flash op is erased under.
func (f *FTL) pickVictim(wearPass bool) int {
	best := -1
	for b := range f.blocks {
		bi := &f.blocks[b]
		if bi.bad || bi.isActive || bi.written < f.geo.PagesPerBlock {
			continue
		}
		if bi.valid == f.geo.PagesPerBlock && !wearPass {
			continue // nothing to gain
		}
		if best < 0 {
			best = b
			continue
		}
		if wearPass {
			if bi.erases < f.blocks[best].erases {
				best = b
			}
		} else if bi.valid < f.blocks[best].valid {
			best = b
		}
	}
	return best
}

// beginGC triggers a collection of the chosen victim block (picked by
// the caller). Relocation I/O begins once in-flight programs against
// the victim drain.
func (f *FTL) beginGC(victim int, wear bool) {
	f.prevWear = wear
	f.gcActive = true
	f.gcCount++
	f.gcst = &gcState{victim: victim}
	if f.hooks.GCStart != nil {
		f.hooks.GCStart()
	}
	f.maybeBeginGC()
}

// maybeBeginGC starts relocation once no outstanding program is in
// flight against the victim. The victim is sealed (fully allocated),
// so no new program can ever target it and the count only drains;
// once it hits zero the victim's page states are final and its data
// safe to move. In-flight reads do not block relocation — only the
// erase (see maybeErase).
func (f *FTL) maybeBeginGC() {
	if !f.gcActive || f.gcRunning || f.blocks[f.gcst.victim].pending > 0 {
		return
	}
	f.gcRunning = true
	f.pumpGC()
}

// maybeErase issues the victim erase once relocation is complete and
// no host read is in flight against the victim. After relocation the
// mapping holds no pointers into the victim, so no new read can
// resolve into it — the count only drains.
func (f *FTL) maybeErase() {
	st := f.gcst
	if st == nil || !st.relocated || st.eraseIssued {
		return
	}
	if f.blocks[st.victim].reads > 0 {
		return
	}
	st.eraseIssued = true
	f.eraseVictim(st.victim)
}

// pumpGC keeps up to GCPipeline relocation transfers in flight, then
// erases the victim (or aborts the pass).
func (f *FTL) pumpGC() {
	st := f.gcst
	for !st.aborted && st.inflight < f.cfg.GCPipeline && st.next < f.geo.PagesPerBlock {
		page := st.next
		st.next++
		ppn := st.victim*f.geo.PagesPerBlock + page
		if f.pageState[ppn] != pageValid {
			continue
		}
		st.inflight++
		f.relocate(ppn)
	}
	if st.inflight > 0 {
		return
	}
	if st.aborted {
		// No room to move the remaining valid pages: the pass made no
		// net progress and retrying it cannot either (only an erase
		// creates relocation space). Mark the FTL stalled so the write
		// that triggered collection fails with ErrNoSpace instead of
		// looping startGC -> abort forever.
		f.GCAborts++
		f.gcStalled = true
		f.finishGC()
		return
	}
	st.relocated = true
	f.maybeErase()
}

// relocate copies one valid victim page to a fresh frontier page on
// the GC tag. The destination is allocated after the copy's read
// completes, so concurrent relocations still program the GC frontier
// block strictly in order.
func (f *FTL) relocate(ppn int) {
	st := f.gcst
	lpn := f.p2l[ppn]
	f.io.ReadPage(f.addrOf(ppn), TagGC, func(data []byte, err error) {
		if err != nil {
			// Unreadable during GC: drop the mapping and count the loss
			// so the layer above (volume mirroring, scrubbing) can see
			// it — a mirrored volume repairs the page from its replica.
			f.GCReadFaults++
			f.invalidate(ppn)
			if lpn >= 0 && f.l2p[lpn] == ppn {
				f.l2p[lpn] = -1
				f.LostPages++
			}
			st.inflight--
			f.pumpGC()
			return
		}
		if lpn < 0 || f.l2p[lpn] != ppn || f.pageState[ppn] != pageValid {
			// Trimmed while the copy was in flight: drop it.
			st.inflight--
			f.pumpGC()
			return
		}
		dst, aerr := f.gcAllocPage()
		if aerr != nil {
			st.aborted = true
			st.inflight--
			f.pumpGC()
			return
		}
		f.GCMoves++
		f.program(dst, data, TagGC, func(finalPPN int, perr error) {
			st.inflight--
			if perr != nil {
				st.aborted = true
				f.pumpGC()
				return
			}
			if f.l2p[lpn] == ppn && f.pageState[ppn] == pageValid {
				f.invalidate(ppn)
				f.l2p[lpn] = finalPPN
				f.p2l[finalPPN] = lpn
				f.pageState[finalPPN] = pageValid
				f.blocks[f.blockOf(finalPPN)].valid++
			} else {
				// Trimmed mid-copy: the fresh page holds garbage.
				f.pageState[finalPPN] = pageInvalid
			}
			f.pumpGC()
		})
	})
}

// gcAllocPage allocates a relocation target on the GC frontier without
// recursing into GC.
func (f *FTL) gcAllocPage() (int, error) {
	for {
		if blk := int(f.actives[TagGC]); blk >= 0 {
			b := &f.blocks[blk]
			if !b.bad && b.written < f.geo.PagesPerBlock {
				ppn := blk*f.geo.PagesPerBlock + b.written
				b.written++
				return ppn, nil
			}
			b.isActive = false
			f.actives[TagGC] = -1
		}
		if len(f.freePool) == 0 {
			return 0, ErrNoSpace
		}
		blk := f.popLeastWorn()
		f.actives[TagGC] = int32(blk)
		ab := &f.blocks[blk]
		ab.isActive = true
		ab.written = 0
		ab.valid = 0
	}
}

func (f *FTL) eraseVictim(victim int) {
	f.FlashErases++
	f.io.EraseBlock(f.blockAddr(victim), TagGC, func(err error) {
		bi := &f.blocks[victim]
		if err != nil {
			f.retireBlock(victim)
		} else {
			bi.erases++
			bi.valid = 0
			bi.written = 0
			base := victim * f.geo.PagesPerBlock
			for p := 0; p < f.geo.PagesPerBlock; p++ {
				f.pageState[base+p] = pageFree
				f.p2l[base+p] = -1
			}
			// Fresh erased space: a previously stalled FTL can make
			// progress again.
			f.gcStalled = false
			f.pushFree(victim)
		}
		f.finishGC()
	})
}

// finishGC drains operations queued while collecting.
func (f *FTL) finishGC() {
	f.gcActive = false
	f.gcRunning = false
	f.gcst = nil
	if f.hooks.GCEnd != nil {
		f.hooks.GCEnd()
	}
	ops := f.pendingOps
	f.pendingOps = nil
	for _, op := range ops {
		if f.gcActive {
			// A drained op re-triggered GC; requeue the rest.
			f.pendingOps = append(f.pendingOps, op)
			continue
		}
		op()
	}
}

// MaxEraseSkew returns max-min erase count across serviceable blocks,
// the wear-leveling quality metric.
func (f *FTL) MaxEraseSkew() int64 {
	var min, max int64 = -1, 0
	for b := range f.blocks {
		if f.blocks[b].bad {
			continue
		}
		e := f.blocks[b].erases
		if min < 0 || e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if min < 0 {
		return 0
	}
	return max - min
}

// MappingEntries returns the size of the FTL's logical-to-physical
// table. Unlike a file system's extent maps, it covers the whole
// logical space whether or not data is live — the "large DRAM"
// cost the paper attributes to in-device FTLs (§4).
func (f *FTL) MappingEntries() int { return len(f.l2p) }
