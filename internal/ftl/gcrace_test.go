package ftl

// Regression test for the victim-scan/metadata race: a collection
// waiting for its victim's in-flight programs to drain must not start
// its relocation scan in the window between a program's completion
// and the installation of that page's mapping — pre-fix, the scan saw
// the just-programmed page as dead, skipped it, and the victim erase
// destroyed it while l2p (updated moments later) pointed at freed
// flash. Driven through a scripted Backend so the interleaving is
// exact.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/nand"
)

type scriptOp struct {
	kind string // "read", "write", "erase"
	addr nand.Addr
	tag  IOTag
	data []byte
	rcb  func([]byte, error)
	wcb  func(error)
}

// scriptBackend completes operations inline while sync is set,
// otherwise holds them in pending for the test to release one by one.
type scriptBackend struct {
	geo     nand.Geometry
	store   map[nand.Addr][]byte
	sync    bool
	pending []scriptOp
}

func newScript(geo nand.Geometry) *scriptBackend {
	return &scriptBackend{geo: geo, store: make(map[nand.Addr][]byte), sync: true}
}

func (b *scriptBackend) run(op scriptOp) {
	switch op.kind {
	case "read":
		d, ok := b.store[op.addr]
		if !ok {
			op.rcb(nil, fmt.Errorf("script: read of unwritten page %v", op.addr))
			return
		}
		op.rcb(append([]byte(nil), d...), nil)
	case "write":
		b.store[op.addr] = op.data
		op.wcb(nil)
	case "erase":
		for p := 0; p < b.geo.PagesPerBlock; p++ {
			a := op.addr
			a.Page = p
			delete(b.store, a)
		}
		op.wcb(nil)
	}
}

func (b *scriptBackend) dispatch(op scriptOp) {
	if b.sync {
		b.run(op)
		return
	}
	b.pending = append(b.pending, op)
}

func (b *scriptBackend) ReadPage(a nand.Addr, tag IOTag, cb func([]byte, error)) {
	b.dispatch(scriptOp{kind: "read", addr: a, tag: tag, rcb: cb})
}

func (b *scriptBackend) WritePage(a nand.Addr, data []byte, tag IOTag, cb func(error)) {
	b.dispatch(scriptOp{kind: "write", addr: a, tag: tag, data: append([]byte(nil), data...), wcb: cb})
}

func (b *scriptBackend) EraseBlock(a nand.Addr, tag IOTag, cb func(error)) {
	b.dispatch(scriptOp{kind: "erase", addr: a, tag: tag, wcb: cb})
}

// popWrite completes the oldest pending host write (same-tag writes
// must complete in issue order).
func (b *scriptBackend) popWrite(t *testing.T) {
	t.Helper()
	for i, op := range b.pending {
		if op.kind == "write" && op.tag != TagGC {
			b.pending = append(b.pending[:i:i], b.pending[i+1:]...)
			b.run(op)
			return
		}
	}
	t.Fatalf("no pending host write; pending: %+v", b.pending)
}

// drain completes everything FIFO until quiescent.
func (b *scriptBackend) drain() {
	for len(b.pending) > 0 {
		op := b.pending[0]
		b.pending = b.pending[1:]
		b.run(op)
	}
}

func lpnPage(geo nand.Geometry, lpn, version int) []byte {
	p := make([]byte, geo.PageSize)
	for i := range p {
		p[i] = byte(lpn*31 + version*7 + i)
	}
	return p
}

func TestGCVictimScanWaitsForProgramMetadata(t *testing.T) {
	geo := nand.Geometry{
		Buses: 1, ChipsPerBus: 1, BlocksPerChip: 6, PagesPerBlock: 4,
		PageSize: 32, OOBSize: 4,
	}
	b := newScript(geo)
	// GCPipeline > 1 matters: the relocation scan must sweep past the
	// still-pending page in its wake-up pass instead of parking on an
	// earlier valid page and revisiting later.
	f, err := NewWithBackend(b, geo, Config{
		OverProvision: 0.5, GCLowWater: 2, WearLevelEvery: 0, GCPipeline: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	gcStarted := false
	f.SetHooks(Hooks{GCStart: func() { gcStarted = true }})

	write := func(lpn, version int) error {
		e := errors.New("write never completed")
		f.Write(lpn, lpnPage(geo, lpn, version), func(err error) { e = err })
		return e
	}
	// Fill the logical space: blocks 0..2 seal full-valid.
	for lpn := 0; lpn < f.LogicalPages(); lpn++ {
		if err := write(lpn, 0); err != nil {
			t.Fatalf("seed %d: %v", lpn, err)
		}
	}
	// Overwrite lpns 0 and 1 (opens block 3), then trim them: block 3
	// is now the min-valid block once sealed.
	for lpn := 0; lpn < 2; lpn++ {
		if err := write(lpn, 1); err != nil {
			t.Fatal(err)
		}
		if err := f.Trim(lpn); err != nil {
			t.Fatal(err)
		}
	}

	// Hold completions: overwrites of lpns 2 and 3 allocate block 3's
	// last two pages (sealing it) with both programs still in flight.
	b.sync = false
	var err2, err3 error = errors.New("pending"), errors.New("pending")
	f.Write(2, lpnPage(geo, 2, 1), func(e error) { err2 = e })
	f.Write(3, lpnPage(geo, 3, 1), func(e error) { err3 = e })

	// The next write finds the pool at the low-water mark and picks
	// sealed, zero-valid block 3 as the collection victim — with two
	// programs pending against it, so relocation must wait.
	var err4 error = errors.New("pending")
	f.Write(4, lpnPage(geo, 4, 1), func(e error) { err4 = e })
	if !gcStarted {
		t.Fatal("collection did not trigger; the scenario lost its shape")
	}

	// Drain the pending programs one at a time. Completing the LAST
	// one is the race window: the collection wakes on the drained
	// pending count, and pre-fix its scan ran before the program's
	// mapping was installed — lpn 3's page was skipped as dead and
	// erased under the mapping.
	b.popWrite(t)
	b.popWrite(t)

	// Let everything else (relocation, erase, the queued lpn-4 write)
	// run to completion.
	b.sync = true
	b.drain()
	if err2 != nil || err3 != nil || err4 != nil {
		t.Fatalf("writes failed: lpn2=%v lpn3=%v lpn4=%v", err2, err3, err4)
	}
	if f.FlashErases == 0 {
		t.Fatal("victim was never erased; the scenario lost its shape")
	}

	// Every live page must read back its latest version — pre-fix,
	// lpn 3 resolves into the erased victim and the read fails.
	for lpn := 2; lpn < f.LogicalPages(); lpn++ {
		version := 0
		if lpn <= 4 {
			version = 1
		}
		var data []byte
		var rerr error = errors.New("pending")
		f.Read(lpn, func(d []byte, e error) { data, rerr = d, e })
		if rerr != nil {
			t.Fatalf("lpn %d unreadable after collection: %v", lpn, rerr)
		}
		if !bytes.Equal(data, lpnPage(geo, lpn, version)) {
			t.Fatalf("lpn %d returned stale or foreign data", lpn)
		}
	}
}
