package ftl

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/flashctl"
	"repro/internal/flashserver"
	"repro/internal/nand"
	"repro/internal/sim"
)

// harness provides a synchronous view of the FTL for tests: every call
// runs the event engine to completion.
type harness struct {
	eng  *sim.Engine
	card *nand.Card
	ftl  *FTL
}

func newHarness(t *testing.T, geo nand.Geometry, rel nand.Reliability, cfg Config) *harness {
	t.Helper()
	eng := sim.NewEngine()
	card, err := nand.NewCard(eng, "card", geo, nand.DefaultTiming(), rel, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sp *flashserver.Splitter
	ctl, err := flashctl.New(eng, card, flashctl.DefaultConfig(), flashctl.Handlers{
		ReadChunk:    func(tag, off int, chunk []byte, last bool) { sp.Handlers().ReadChunk(tag, off, chunk, last) },
		ReadDone:     func(tag, c int, err error) { sp.Handlers().ReadDone(tag, c, err) },
		WriteDataReq: func(tag int) { sp.Handlers().WriteDataReq(tag) },
		WriteDone:    func(tag int, err error) { sp.Handlers().WriteDone(tag, err) },
		EraseDone:    func(tag int, err error) { sp.Handlers().EraseDone(tag, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sp = flashserver.NewSplitter(ctl)
	srv := flashserver.NewServer(sp, "ftl", 16)
	f, err := New(srv.NewIface("ftl"), geo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{eng: eng, card: card, ftl: f}
}

func smallGeo() nand.Geometry {
	return nand.Geometry{
		Buses: 2, ChipsPerBus: 1, BlocksPerChip: 8, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 64,
	}
}

func (h *harness) write(t *testing.T, lpn int, data []byte) error {
	t.Helper()
	var result error = errors.New("write never completed")
	h.ftl.Write(lpn, data, func(err error) { result = err })
	h.eng.Run()
	return result
}

func (h *harness) read(t *testing.T, lpn int) ([]byte, error) {
	t.Helper()
	var data []byte
	var result error = errors.New("read never completed")
	h.ftl.Read(lpn, func(d []byte, err error) { data, result = d, err })
	h.eng.Run()
	return data, result
}

func page(geo nand.Geometry, seed byte) []byte {
	b := make([]byte, geo.PageSize)
	for i := range b {
		b[i] = seed ^ byte(i*3)
	}
	return b
}

func TestWriteReadBack(t *testing.T) {
	h := newHarness(t, smallGeo(), nand.Reliability{}, DefaultConfig())
	for lpn := 0; lpn < 10; lpn++ {
		if err := h.write(t, lpn, page(smallGeo(), byte(lpn))); err != nil {
			t.Fatalf("write %d: %v", lpn, err)
		}
	}
	for lpn := 0; lpn < 10; lpn++ {
		got, err := h.read(t, lpn)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if !bytes.Equal(got, page(smallGeo(), byte(lpn))) {
			t.Fatalf("lpn %d: wrong data", lpn)
		}
	}
}

func TestOverwriteRemaps(t *testing.T) {
	h := newHarness(t, smallGeo(), nand.Reliability{}, DefaultConfig())
	for v := 0; v < 5; v++ {
		if err := h.write(t, 3, page(smallGeo(), byte(0x40+v))); err != nil {
			t.Fatalf("overwrite %d: %v", v, err)
		}
	}
	got, err := h.read(t, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(smallGeo(), 0x44)) {
		t.Fatal("overwrite did not return latest version")
	}
	// 5 host writes, no GC expected yet: WA == 1.
	if wa := h.ftl.WriteAmplification(); wa != 1 {
		t.Fatalf("write amplification = %f, want 1.0", wa)
	}
}

func TestUnmappedAndRangeErrors(t *testing.T) {
	h := newHarness(t, smallGeo(), nand.Reliability{}, DefaultConfig())
	if _, err := h.read(t, 0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read unmapped: %v", err)
	}
	if _, err := h.read(t, 1<<20); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read out of range: %v", err)
	}
	if err := h.write(t, 1<<20, page(smallGeo(), 0)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write out of range: %v", err)
	}
	if err := h.write(t, 0, []byte{1}); !errors.Is(err, ErrDataSize) {
		t.Fatalf("short write: %v", err)
	}
}

func TestTrim(t *testing.T) {
	h := newHarness(t, smallGeo(), nand.Reliability{}, DefaultConfig())
	if err := h.write(t, 1, page(smallGeo(), 9)); err != nil {
		t.Fatal(err)
	}
	if err := h.ftl.Trim(1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.read(t, 1); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read after trim: %v", err)
	}
	if err := h.ftl.Trim(1 << 20); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("trim out of range: %v", err)
	}
}

func TestGarbageCollectionReclaims(t *testing.T) {
	// Fill the logical space, then overwrite it several times: GC must
	// keep the device writable and data intact.
	geo := smallGeo()
	h := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 0})
	lpns := h.ftl.LogicalPages()
	version := make(map[int]byte)
	// Seed every page once, then overwrite in random order so blocks
	// hold mixed valid/invalid pages and GC must relocate data.
	for lpn := 0; lpn < lpns; lpn++ {
		if err := h.write(t, lpn, page(geo, byte(lpn))); err != nil {
			t.Fatalf("seed lpn %d: %v", lpn, err)
		}
		version[lpn] = byte(lpn)
	}
	rng := sim.NewRNG(99)
	for i := 0; i < 3*lpns; i++ {
		lpn := rng.Intn(lpns)
		v := byte(rng.Intn(256))
		if err := h.write(t, lpn, page(geo, v)); err != nil {
			t.Fatalf("random overwrite %d (lpn %d): %v", i, lpn, err)
		}
		version[lpn] = v
	}
	if h.ftl.FlashErases == 0 {
		t.Fatal("no GC happened despite 4x overwrite of full logical space")
	}
	if wa := h.ftl.WriteAmplification(); wa <= 1.0 {
		t.Fatalf("WA = %f, want > 1 after GC", wa)
	}
	for lpn := 0; lpn < lpns; lpn++ {
		got, err := h.read(t, lpn)
		if err != nil {
			t.Fatalf("post-GC read %d: %v", lpn, err)
		}
		if !bytes.Equal(got, page(geo, version[lpn])) {
			t.Fatalf("post-GC lpn %d: wrong data", lpn)
		}
	}
}

func TestWearLeveling(t *testing.T) {
	// Hammer a single logical page; wear-leveling passes must spread
	// erases beyond the handful of blocks greedy GC would reuse.
	geo := smallGeo()
	withWL := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 4})
	noWL := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 0})
	for _, h := range []*harness{withWL, noWL} {
		// Touch every logical page once so all blocks hold data.
		for lpn := 0; lpn < h.ftl.LogicalPages(); lpn++ {
			if err := h.write(t, lpn, page(geo, byte(lpn))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2000; i++ {
			if err := h.write(t, 0, page(geo, byte(i))); err != nil {
				t.Fatalf("hot write %d: %v", i, err)
			}
		}
	}
	// Skew must be substantially lower with static wear leveling: the
	// cold blocks re-enter circulation instead of pinning erases onto
	// the over-provisioning pool.
	if withWL.ftl.MaxEraseSkew()*2 > noWL.ftl.MaxEraseSkew() {
		t.Fatalf("wear leveling did not reduce skew enough: with=%d without=%d",
			withWL.ftl.MaxEraseSkew(), noWL.ftl.MaxEraseSkew())
	}
}

func TestBadBlockRetirement(t *testing.T) {
	geo := smallGeo()
	h := newHarness(t, geo, nand.Reliability{}, DefaultConfig())
	// Poison two blocks before any writes.
	h.card.MarkBad(nand.Addr{Bus: 0, Chip: 0, Block: 0})
	h.card.MarkBad(nand.Addr{Bus: 1, Chip: 0, Block: 3})
	for lpn := 0; lpn < h.ftl.LogicalPages()/2; lpn++ {
		if err := h.write(t, lpn, page(geo, byte(lpn))); err != nil {
			t.Fatalf("write with bad blocks present: %v", err)
		}
	}
	if h.ftl.BadBlocks == 0 {
		t.Fatal("bad blocks never detected")
	}
	for lpn := 0; lpn < h.ftl.LogicalPages()/2; lpn++ {
		got, err := h.read(t, lpn)
		if err != nil || !bytes.Equal(got, page(geo, byte(lpn))) {
			t.Fatalf("data lost around bad blocks: lpn %d err %v", lpn, err)
		}
	}
}

func TestDeviceFull(t *testing.T) {
	// A device with no invalid pages to collect must fail cleanly.
	geo := smallGeo()
	h := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.05, GCLowWater: 1, WearLevelEvery: 0})
	var lastErr error
	for lpn := 0; lpn < h.ftl.LogicalPages(); lpn++ {
		if err := h.write(t, lpn, page(geo, byte(lpn))); err != nil {
			lastErr = err
			break
		}
	}
	// With 5% OP on a tiny device this either fits exactly or errors
	// with ErrNoSpace; anything else (hang, corruption) is a bug.
	if lastErr != nil && !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("unexpected failure: %v", lastErr)
	}
}

func TestConfigValidation(t *testing.T) {
	geo := smallGeo()
	if _, err := New(nil, geo, Config{OverProvision: 0.001}); err == nil {
		t.Fatal("tiny over-provisioning accepted")
	}
	if _, err := New(nil, nand.Geometry{}, DefaultConfig()); err == nil {
		t.Fatal("zero geometry accepted")
	}
}

// --- fake backend: deterministic, adversarially schedulable ----------

// fakeOp is one queued flash operation awaiting service.
type fakeOp struct {
	gc    bool // carried TagGC
	erase bool
	run   func()
}

// fakeBackend is an in-memory flash with explicit service control:
// operations queue until the test pumps them, so tests can interleave
// host I/O with GC relocation in adversarial orders. Erased/unwritten
// pages read as 0xFF, so a read that lands on a page GC erased under
// it is detectable as corruption.
type fakeBackend struct {
	geo   nand.Geometry
	pages map[nand.Addr][]byte
	bad   map[int]bool // linear block index -> programs fail ErrBadBlock
	queue []fakeOp
	sync  bool // service every op at issue time
}

func newFakeBackend(geo nand.Geometry, sync bool) *fakeBackend {
	return &fakeBackend{geo: geo, pages: make(map[nand.Addr][]byte), bad: make(map[int]bool), sync: sync}
}

// linearBlock flattens an address to the FTL's block index.
func (b *fakeBackend) linearBlock(a nand.Addr) int {
	return ((a.Bus*b.geo.ChipsPerBus)+a.Chip)*b.geo.BlocksPerChip + a.Block
}

func (b *fakeBackend) push(op fakeOp) {
	if b.sync {
		op.run()
		return
	}
	b.queue = append(b.queue, op)
}

// pump services queued ops FIFO until the queue is empty.
func (b *fakeBackend) pump() {
	for len(b.queue) > 0 {
		op := b.queue[0]
		b.queue = b.queue[1:]
		op.run()
	}
}

// pumpGCFirst adversarially services all GC-tagged ops (including new
// ones they spawn) before any host op: the worst case for a read that
// resolved its mapping early, because relocation and the erase land
// before the read is serviced.
func (b *fakeBackend) pumpGCFirst() {
	for len(b.queue) > 0 {
		idx := -1
		for i, op := range b.queue {
			if op.gc {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = 0
		}
		op := b.queue[idx]
		b.queue = append(b.queue[:idx], b.queue[idx+1:]...)
		op.run()
	}
}

func (b *fakeBackend) ReadPage(a nand.Addr, tag IOTag, cb func([]byte, error)) {
	b.push(fakeOp{gc: tag == TagGC, run: func() {
		data, ok := b.pages[a]
		if !ok {
			// Erased page: NAND reads back all-ones.
			data = bytes.Repeat([]byte{0xFF}, b.geo.PageSize)
		}
		out := make([]byte, len(data))
		copy(out, data)
		cb(out, nil)
	}})
}

func (b *fakeBackend) WritePage(a nand.Addr, data []byte, tag IOTag, cb func(error)) {
	buf := make([]byte, len(data))
	copy(buf, data)
	b.push(fakeOp{gc: tag == TagGC, run: func() {
		if b.bad[b.linearBlock(a)] {
			cb(nand.ErrBadBlock)
			return
		}
		b.pages[a] = buf
		cb(nil)
	}})
}

func (b *fakeBackend) EraseBlock(a nand.Addr, tag IOTag, cb func(error)) {
	b.push(fakeOp{gc: tag == TagGC, erase: true, run: func() {
		for addr := range b.pages {
			if addr.Bus == a.Bus && addr.Chip == a.Chip && addr.Block == a.Block {
				delete(b.pages, addr)
			}
		}
		cb(nil)
	}})
}

// syncWrite drives one write to completion on a sync fake backend.
func syncWrite(t *testing.T, f *FTL, lpn int, data []byte) error {
	t.Helper()
	var result error = errors.New("write never completed")
	f.Write(lpn, data, func(err error) { result = err })
	return result
}

// TestReadDuringRelocation is the regression test for the read/GC
// race: a read admitted while GC is relocating its page must return
// the page's content — the collector's erase must wait for it to
// drain even when every relocation op is serviced first — never the
// 0xFF pattern of the erased victim.
func TestReadDuringRelocation(t *testing.T) {
	geo := nand.Geometry{
		Buses: 1, ChipsPerBus: 1, BlocksPerChip: 8, PagesPerBlock: 4,
		PageSize: 64, OOBSize: 8,
	}
	be := newFakeBackend(geo, false)
	f, err := NewWithBackend(be, geo, Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 0, GCPipeline: 2})
	if err != nil {
		t.Fatal(err)
	}
	lpns := f.LogicalPages()
	content := make(map[int][]byte)
	w := func(lpn int, seed byte) error {
		data := bytes.Repeat([]byte{seed}, geo.PageSize)
		var res error = errors.New("pending")
		f.Write(lpn, data, func(err error) { res = err })
		be.pump()
		if res == nil {
			content[lpn] = data
		}
		return res
	}
	for lpn := 0; lpn < lpns; lpn++ {
		if err := w(lpn, byte(lpn+1)); err != nil {
			t.Fatalf("seed %d: %v", lpn, err)
		}
	}
	// Overwrite until a write triggers a collection. The trigger is
	// synchronous inside the Write call, so gcActive is observable
	// before any backend op is serviced; the pending write completes
	// when the test pumps the backend below.
	rng := sim.NewRNG(7)
	var churnErrs []error
	for i := 0; i < 10*lpns && !f.gcActive; i++ {
		lpn := rng.Intn(lpns)
		data := bytes.Repeat([]byte{byte(0x10 + i)}, geo.PageSize)
		f.Write(lpn, data, func(err error) {
			if err != nil {
				churnErrs = append(churnErrs, err)
			}
		})
		content[lpn] = data
		if !f.gcActive {
			be.pump()
		}
	}
	if !f.gcActive {
		t.Fatal("never saw an active collection")
	}
	// Pick a logical page that currently lives in the victim block.
	victim := f.gcst.victim
	target := -1
	for lpn := 0; lpn < lpns; lpn++ {
		if ppn := f.l2p[lpn]; ppn >= 0 && f.blockOf(ppn) == victim {
			target = lpn
			break
		}
	}
	if target < 0 {
		t.Fatal("victim holds no mapped pages")
	}
	var got []byte
	var rerr error = errors.New("pending")
	f.Read(target, func(data []byte, err error) { got, rerr = data, err })
	// Adversarial service order: relocation and the erase complete
	// before any host read is serviced.
	be.pumpGCFirst()
	be.pump()
	if len(churnErrs) > 0 {
		t.Fatalf("churn write failed: %v", churnErrs[0])
	}
	if rerr != nil {
		t.Fatalf("read during relocation: %v", rerr)
	}
	if !bytes.Equal(got, content[target]) {
		t.Fatalf("read during relocation returned wrong data (erased-page garbage?): got %x want %x",
			got[:4], content[target][:4])
	}
}

// TestGCAbortFailsDeterministically is the regression test for the
// GC-abort livelock: when a collection cannot allocate relocation
// space and over-provisioning is exhausted, the triggering write must
// fail with ErrNoSpace instead of re-triggering the same doomed
// collection forever.
func TestGCAbortFailsDeterministically(t *testing.T) {
	geo := nand.Geometry{
		Buses: 1, ChipsPerBus: 1, BlocksPerChip: 8, PagesPerBlock: 4,
		PageSize: 64, OOBSize: 8,
	}
	be := newFakeBackend(geo, true)
	// 12.5% OP: 28 logical pages over 32 physical.
	f, err := NewWithBackend(be, geo, Config{OverProvision: 0.125, GCLowWater: 1, WearLevelEvery: 0, GCPipeline: 1})
	if err != nil {
		t.Fatal(err)
	}
	lpns := f.LogicalPages()
	if lpns != 28 {
		t.Fatalf("logical pages = %d, want 28", lpns)
	}
	for lpn := 0; lpn < lpns; lpn++ {
		if err := syncWrite(t, f, lpn, bytes.Repeat([]byte{byte(lpn + 1)}, geo.PageSize)); err != nil {
			t.Fatalf("seed %d: %v", lpn, err)
		}
	}
	// Spread overwrites across blocks so victims exist but reclaim
	// little; keep writing until the device reports it is full. The
	// old code looped startGC -> abort -> retry forever here.
	var lastErr error
	for i := 0; i < 4*lpns && lastErr == nil; i++ {
		lpn := (i * 4) % lpns
		lastErr = syncWrite(t, f, lpn, bytes.Repeat([]byte{byte(0x80 + i)}, geo.PageSize))
	}
	if !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("exhausted device: got %v, want ErrNoSpace", lastErr)
	}
	if f.GCAborts == 0 {
		t.Fatal("expected at least one aborted collection before ErrNoSpace")
	}
	// Reads must still work after the failure.
	var got []byte
	var rerr error = errors.New("pending")
	f.Read(1, func(data []byte, err error) { got, rerr = data, err })
	if rerr != nil || got[0] != 2 {
		t.Fatalf("read after ErrNoSpace: %v (byte %x)", rerr, got[0])
	}
	// The stall must not be permanent: trimming pages shrinks victims'
	// relocation demand, so collection becomes possible again and the
	// device recovers without a rebuild.
	for lpn := 0; lpn < lpns/2; lpn++ {
		if err := f.Trim(lpn); err != nil {
			t.Fatal(err)
		}
	}
	if err := syncWrite(t, f, 0, bytes.Repeat([]byte{0x55}, geo.PageSize)); err != nil {
		t.Fatalf("write after trim on a stalled device: %v", err)
	}
	got, rerr = nil, errors.New("pending")
	f.Read(0, func(data []byte, err error) { got, rerr = data, err })
	if rerr != nil || got[0] != 0x55 {
		t.Fatalf("read after recovery: %v", rerr)
	}
}

// TestGCBadFrontierAborts: a GC relocation whose destination block
// turns out bad must abort the collection (retire, re-allocate, and
// fail the pass when the pool is dry) — never park its retry behind
// the collection that is waiting on it, which would deadlock the FTL.
func TestGCBadFrontierAborts(t *testing.T) {
	geo := nand.Geometry{
		Buses: 1, ChipsPerBus: 1, BlocksPerChip: 8, PagesPerBlock: 4,
		PageSize: 64, OOBSize: 8,
	}
	be := newFakeBackend(geo, true)
	f, err := NewWithBackend(be, geo, Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 0, GCPipeline: 1})
	if err != nil {
		t.Fatal(err)
	}
	lpns := f.LogicalPages() // 24: blocks 0-5 after the fill, 6-7 free
	for lpn := 0; lpn < lpns; lpn++ {
		if err := syncWrite(t, f, lpn, bytes.Repeat([]byte{byte(lpn + 1)}, geo.PageSize)); err != nil {
			t.Fatalf("seed %d: %v", lpn, err)
		}
	}
	// Block 7 will be the last free block when the first collection
	// triggers; poisoning it makes the relocation's program fail after
	// the pool is empty, exercising the GC-tag bad-block retry path.
	be.bad[7] = true
	var lastErr error
	for i := 0; i < 4*lpns && lastErr == nil; i++ {
		lastErr = syncWrite(t, f, (i*4)%lpns, bytes.Repeat([]byte{byte(0x80 + i)}, geo.PageSize))
	}
	if !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("bad GC frontier at exhaustion: got %v, want ErrNoSpace (a hang here is the deadlock)", lastErr)
	}
	if f.GCAborts == 0 {
		t.Fatal("expected the collection to abort")
	}
	if f.BadBlocks == 0 {
		t.Fatal("poisoned block never retired")
	}
	// Still-mapped pages remain readable.
	var rerr error = errors.New("pending")
	f.Read(1, func(_ []byte, err error) { rerr = err })
	if rerr != nil {
		t.Fatalf("read after aborted collection: %v", rerr)
	}
}

// TestWearPassHeadroomGate: with WearLevelEvery=1 every collection is
// a wear pass, which may pick an all-valid victim that reclaims zero
// net pages. Without the headroom gate this runs the free pool dry and
// wedges the device; with it, low-headroom collections fall back to
// greedy victims and a write-churn workload survives indefinitely.
func TestWearPassHeadroomGate(t *testing.T) {
	geo := nand.Geometry{
		Buses: 1, ChipsPerBus: 1, BlocksPerChip: 8, PagesPerBlock: 4,
		PageSize: 64, OOBSize: 8,
	}
	be := newFakeBackend(geo, true)
	f, err := NewWithBackend(be, geo, Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 1, GCPipeline: 1})
	if err != nil {
		t.Fatal(err)
	}
	lpns := f.LogicalPages()
	for lpn := 0; lpn < lpns; lpn++ {
		if err := syncWrite(t, f, lpn, bytes.Repeat([]byte{byte(lpn)}, geo.PageSize)); err != nil {
			t.Fatalf("seed %d: %v", lpn, err)
		}
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 500; i++ {
		if err := syncWrite(t, f, rng.Intn(lpns), bytes.Repeat([]byte{byte(i)}, geo.PageSize)); err != nil {
			t.Fatalf("churn write %d failed under all-wear-pass GC: %v", i, err)
		}
	}
	if f.GCAborts != 0 {
		t.Fatalf("%d aborted collections: wear passes ran the pool dry", f.GCAborts)
	}
	if f.gcCount == 0 {
		t.Fatal("no collections happened")
	}
}

// TestRetireBlockClearsActive: a retired block must not keep stale
// frontier state (isActive), or victim selection skips it forever and
// allocation may try to resume it.
func TestRetireBlockClearsActive(t *testing.T) {
	geo := smallGeo()
	be := newFakeBackend(geo, true)
	f, err := NewWithBackend(be, geo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := syncWrite(t, f, 0, page(geo, 1)); err != nil {
		t.Fatal(err)
	}
	blk := int(f.actives[0])
	if blk < 0 {
		t.Fatal("no active frontier after a write")
	}
	f.retireBlock(blk)
	if f.blocks[blk].isActive {
		t.Fatal("retired block still marked active")
	}
	if f.actives[0] >= 0 {
		t.Fatal("retired block still installed as a frontier")
	}
	// Writes keep working on a fresh frontier.
	if err := syncWrite(t, f, 1, page(geo, 2)); err != nil {
		t.Fatalf("write after retirement: %v", err)
	}
}

// TestTaggedFrontiersAreDisjoint: two tags must never share a frontier
// block, so independently scheduled write streams cannot interleave
// programs inside one NAND block.
func TestTaggedFrontiersAreDisjoint(t *testing.T) {
	geo := smallGeo()
	be := newFakeBackend(geo, true)
	f, err := NewWithBackend(be, geo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	f.WriteTagged(0, page(geo, 1), 0, func(err error) { werr = err })
	if werr != nil {
		t.Fatal(werr)
	}
	f.WriteTagged(1, page(geo, 2), 1, func(err error) { werr = err })
	if werr != nil {
		t.Fatal(werr)
	}
	if f.actives[0] == f.actives[1] {
		t.Fatalf("tags 0 and 1 share frontier block %d", f.actives[0])
	}
	if f.blockOf(f.l2p[0]) == f.blockOf(f.l2p[1]) {
		t.Fatal("pages from different tags landed in the same block")
	}
}

// BenchmarkFreePoolAlloc measures the frontier-block allocate/free
// cycle that runs on every active-block allocation: a min-heap pop
// plus push over a large pool (formerly an O(n) scan per allocation).
func BenchmarkFreePoolAlloc(b *testing.B) {
	geo := nand.Geometry{
		Buses: 1, ChipsPerBus: 1, BlocksPerChip: 4096, PagesPerBlock: 4,
		PageSize: 64, OOBSize: 8,
	}
	be := newFakeBackend(geo, true)
	f, err := NewWithBackend(be, geo, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := f.popLeastWorn()
		f.blocks[blk].erases += int64(rng.Intn(3))
		f.pushFree(blk)
	}
}

// Property: any random stream of write/trim ops leaves the FTL
// equivalent to an in-memory map, even with GC churn.
func TestFTLOracleProperty(t *testing.T) {
	geo := nand.Geometry{
		Buses: 1, ChipsPerBus: 1, BlocksPerChip: 6, PagesPerBlock: 4,
		PageSize: 64, OOBSize: 8,
	}
	prop := func(ops []uint16) bool {
		h := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.3, GCLowWater: 2, WearLevelEvery: 8})
		lpns := h.ftl.LogicalPages()
		oracle := make(map[int][]byte)
		for i, op := range ops {
			lpn := int(op) % lpns
			switch op % 3 {
			case 0, 1: // write
				data := bytes.Repeat([]byte{byte(i)}, geo.PageSize)
				if err := h.write(t, lpn, data); err != nil {
					if errors.Is(err, ErrNoSpace) {
						continue
					}
					return false
				}
				oracle[lpn] = data
			case 2: // trim
				if err := h.ftl.Trim(lpn); err != nil {
					return false
				}
				delete(oracle, lpn)
			}
		}
		for lpn := 0; lpn < lpns; lpn++ {
			want, ok := oracle[lpn]
			got, err := h.read(t, lpn)
			if !ok {
				if !errors.Is(err, ErrUnmapped) {
					return false
				}
				continue
			}
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
