package ftl

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/flashctl"
	"repro/internal/flashserver"
	"repro/internal/nand"
	"repro/internal/sim"
)

// harness provides a synchronous view of the FTL for tests: every call
// runs the event engine to completion.
type harness struct {
	eng  *sim.Engine
	card *nand.Card
	ftl  *FTL
}

func newHarness(t *testing.T, geo nand.Geometry, rel nand.Reliability, cfg Config) *harness {
	t.Helper()
	eng := sim.NewEngine()
	card, err := nand.NewCard(eng, "card", geo, nand.DefaultTiming(), rel, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sp *flashserver.Splitter
	ctl, err := flashctl.New(eng, card, flashctl.DefaultConfig(), flashctl.Handlers{
		ReadChunk:    func(tag, off int, chunk []byte, last bool) { sp.Handlers().ReadChunk(tag, off, chunk, last) },
		ReadDone:     func(tag, c int, err error) { sp.Handlers().ReadDone(tag, c, err) },
		WriteDataReq: func(tag int) { sp.Handlers().WriteDataReq(tag) },
		WriteDone:    func(tag int, err error) { sp.Handlers().WriteDone(tag, err) },
		EraseDone:    func(tag int, err error) { sp.Handlers().EraseDone(tag, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sp = flashserver.NewSplitter(ctl)
	srv := flashserver.NewServer(sp, "ftl", 16)
	f, err := New(srv.NewIface("ftl"), geo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{eng: eng, card: card, ftl: f}
}

func smallGeo() nand.Geometry {
	return nand.Geometry{
		Buses: 2, ChipsPerBus: 1, BlocksPerChip: 8, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 64,
	}
}

func (h *harness) write(t *testing.T, lpn int, data []byte) error {
	t.Helper()
	var result error = errors.New("write never completed")
	h.ftl.Write(lpn, data, func(err error) { result = err })
	h.eng.Run()
	return result
}

func (h *harness) read(t *testing.T, lpn int) ([]byte, error) {
	t.Helper()
	var data []byte
	var result error = errors.New("read never completed")
	h.ftl.Read(lpn, func(d []byte, err error) { data, result = d, err })
	h.eng.Run()
	return data, result
}

func page(geo nand.Geometry, seed byte) []byte {
	b := make([]byte, geo.PageSize)
	for i := range b {
		b[i] = seed ^ byte(i*3)
	}
	return b
}

func TestWriteReadBack(t *testing.T) {
	h := newHarness(t, smallGeo(), nand.Reliability{}, DefaultConfig())
	for lpn := 0; lpn < 10; lpn++ {
		if err := h.write(t, lpn, page(smallGeo(), byte(lpn))); err != nil {
			t.Fatalf("write %d: %v", lpn, err)
		}
	}
	for lpn := 0; lpn < 10; lpn++ {
		got, err := h.read(t, lpn)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if !bytes.Equal(got, page(smallGeo(), byte(lpn))) {
			t.Fatalf("lpn %d: wrong data", lpn)
		}
	}
}

func TestOverwriteRemaps(t *testing.T) {
	h := newHarness(t, smallGeo(), nand.Reliability{}, DefaultConfig())
	for v := 0; v < 5; v++ {
		if err := h.write(t, 3, page(smallGeo(), byte(0x40+v))); err != nil {
			t.Fatalf("overwrite %d: %v", v, err)
		}
	}
	got, err := h.read(t, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(smallGeo(), 0x44)) {
		t.Fatal("overwrite did not return latest version")
	}
	// 5 host writes, no GC expected yet: WA == 1.
	if wa := h.ftl.WriteAmplification(); wa != 1 {
		t.Fatalf("write amplification = %f, want 1.0", wa)
	}
}

func TestUnmappedAndRangeErrors(t *testing.T) {
	h := newHarness(t, smallGeo(), nand.Reliability{}, DefaultConfig())
	if _, err := h.read(t, 0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read unmapped: %v", err)
	}
	if _, err := h.read(t, 1<<20); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read out of range: %v", err)
	}
	if err := h.write(t, 1<<20, page(smallGeo(), 0)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write out of range: %v", err)
	}
	if err := h.write(t, 0, []byte{1}); !errors.Is(err, ErrDataSize) {
		t.Fatalf("short write: %v", err)
	}
}

func TestTrim(t *testing.T) {
	h := newHarness(t, smallGeo(), nand.Reliability{}, DefaultConfig())
	if err := h.write(t, 1, page(smallGeo(), 9)); err != nil {
		t.Fatal(err)
	}
	if err := h.ftl.Trim(1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.read(t, 1); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read after trim: %v", err)
	}
	if err := h.ftl.Trim(1 << 20); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("trim out of range: %v", err)
	}
}

func TestGarbageCollectionReclaims(t *testing.T) {
	// Fill the logical space, then overwrite it several times: GC must
	// keep the device writable and data intact.
	geo := smallGeo()
	h := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 0})
	lpns := h.ftl.LogicalPages()
	version := make(map[int]byte)
	// Seed every page once, then overwrite in random order so blocks
	// hold mixed valid/invalid pages and GC must relocate data.
	for lpn := 0; lpn < lpns; lpn++ {
		if err := h.write(t, lpn, page(geo, byte(lpn))); err != nil {
			t.Fatalf("seed lpn %d: %v", lpn, err)
		}
		version[lpn] = byte(lpn)
	}
	rng := sim.NewRNG(99)
	for i := 0; i < 3*lpns; i++ {
		lpn := rng.Intn(lpns)
		v := byte(rng.Intn(256))
		if err := h.write(t, lpn, page(geo, v)); err != nil {
			t.Fatalf("random overwrite %d (lpn %d): %v", i, lpn, err)
		}
		version[lpn] = v
	}
	if h.ftl.FlashErases == 0 {
		t.Fatal("no GC happened despite 4x overwrite of full logical space")
	}
	if wa := h.ftl.WriteAmplification(); wa <= 1.0 {
		t.Fatalf("WA = %f, want > 1 after GC", wa)
	}
	for lpn := 0; lpn < lpns; lpn++ {
		got, err := h.read(t, lpn)
		if err != nil {
			t.Fatalf("post-GC read %d: %v", lpn, err)
		}
		if !bytes.Equal(got, page(geo, version[lpn])) {
			t.Fatalf("post-GC lpn %d: wrong data", lpn)
		}
	}
}

func TestWearLeveling(t *testing.T) {
	// Hammer a single logical page; wear-leveling passes must spread
	// erases beyond the handful of blocks greedy GC would reuse.
	geo := smallGeo()
	withWL := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 4})
	noWL := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 0})
	for _, h := range []*harness{withWL, noWL} {
		// Touch every logical page once so all blocks hold data.
		for lpn := 0; lpn < h.ftl.LogicalPages(); lpn++ {
			if err := h.write(t, lpn, page(geo, byte(lpn))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2000; i++ {
			if err := h.write(t, 0, page(geo, byte(i))); err != nil {
				t.Fatalf("hot write %d: %v", i, err)
			}
		}
	}
	// Skew must be substantially lower with static wear leveling: the
	// cold blocks re-enter circulation instead of pinning erases onto
	// the over-provisioning pool.
	if withWL.ftl.MaxEraseSkew()*2 > noWL.ftl.MaxEraseSkew() {
		t.Fatalf("wear leveling did not reduce skew enough: with=%d without=%d",
			withWL.ftl.MaxEraseSkew(), noWL.ftl.MaxEraseSkew())
	}
}

func TestBadBlockRetirement(t *testing.T) {
	geo := smallGeo()
	h := newHarness(t, geo, nand.Reliability{}, DefaultConfig())
	// Poison two blocks before any writes.
	h.card.MarkBad(nand.Addr{Bus: 0, Chip: 0, Block: 0})
	h.card.MarkBad(nand.Addr{Bus: 1, Chip: 0, Block: 3})
	for lpn := 0; lpn < h.ftl.LogicalPages()/2; lpn++ {
		if err := h.write(t, lpn, page(geo, byte(lpn))); err != nil {
			t.Fatalf("write with bad blocks present: %v", err)
		}
	}
	if h.ftl.BadBlocks == 0 {
		t.Fatal("bad blocks never detected")
	}
	for lpn := 0; lpn < h.ftl.LogicalPages()/2; lpn++ {
		got, err := h.read(t, lpn)
		if err != nil || !bytes.Equal(got, page(geo, byte(lpn))) {
			t.Fatalf("data lost around bad blocks: lpn %d err %v", lpn, err)
		}
	}
}

func TestDeviceFull(t *testing.T) {
	// A device with no invalid pages to collect must fail cleanly.
	geo := smallGeo()
	h := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.05, GCLowWater: 1, WearLevelEvery: 0})
	var lastErr error
	for lpn := 0; lpn < h.ftl.LogicalPages(); lpn++ {
		if err := h.write(t, lpn, page(geo, byte(lpn))); err != nil {
			lastErr = err
			break
		}
	}
	// With 5% OP on a tiny device this either fits exactly or errors
	// with ErrNoSpace; anything else (hang, corruption) is a bug.
	if lastErr != nil && !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("unexpected failure: %v", lastErr)
	}
}

func TestConfigValidation(t *testing.T) {
	geo := smallGeo()
	if _, err := New(nil, geo, Config{OverProvision: 0.001}); err == nil {
		t.Fatal("tiny over-provisioning accepted")
	}
	if _, err := New(nil, nand.Geometry{}, DefaultConfig()); err == nil {
		t.Fatal("zero geometry accepted")
	}
}

// Property: any random stream of write/trim ops leaves the FTL
// equivalent to an in-memory map, even with GC churn.
func TestFTLOracleProperty(t *testing.T) {
	geo := nand.Geometry{
		Buses: 1, ChipsPerBus: 1, BlocksPerChip: 6, PagesPerBlock: 4,
		PageSize: 64, OOBSize: 8,
	}
	prop := func(ops []uint16) bool {
		h := newHarness(t, geo, nand.Reliability{}, Config{OverProvision: 0.3, GCLowWater: 2, WearLevelEvery: 8})
		lpns := h.ftl.LogicalPages()
		oracle := make(map[int][]byte)
		for i, op := range ops {
			lpn := int(op) % lpns
			switch op % 3 {
			case 0, 1: // write
				data := bytes.Repeat([]byte{byte(i)}, geo.PageSize)
				if err := h.write(t, lpn, data); err != nil {
					if errors.Is(err, ErrNoSpace) {
						continue
					}
					return false
				}
				oracle[lpn] = data
			case 2: // trim
				if err := h.ftl.Trim(lpn); err != nil {
					return false
				}
				delete(oracle, lpn)
			}
		}
		for lpn := 0; lpn < lpns; lpn++ {
			want, ok := oracle[lpn]
			got, err := h.read(t, lpn)
			if !ok {
				if !errors.Is(err, ErrUnmapped) {
					return false
				}
				continue
			}
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
