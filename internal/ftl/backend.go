package ftl

import (
	"repro/internal/flashserver"
	"repro/internal/nand"
)

// IOTag labels the traffic stream a flash operation belongs to. The
// FTL treats tags opaquely except for two things: every tag gets its
// own write frontier (so two streams never interleave programs inside
// one NAND block, which would violate in-order programming), and
// TagGC marks the FTL's own relocation traffic so the backend can
// schedule it differently from host I/O.
type IOTag uint8

// TagGC is the reserved tag for garbage-collection relocation and
// erase traffic. Host callers must not use it.
const TagGC IOTag = 0xFF

// TagRebuild is the tag reserved by convention for replica-rebuild
// traffic (see internal/volume). The FTL treats it as an ordinary tag
// — it gets its own write frontier like any stream — but backends map
// it to the Background QoS class so reconstruction never starves
// foreground I/O.
const TagRebuild IOTag = 0xFE

// TagFlush is the tag reserved by convention for cache write-back
// traffic (internal/cache dirty-page flushes and tier migrations).
// Like TagRebuild it is an ordinary tag to the FTL — its own write
// frontier — but backends map it to the Background QoS class so
// flushing dirty cache pages never competes with foreground I/O
// except through the urgency token budget.
const TagFlush IOTag = 0xFD

// Backend is the flash transport under an FTL. The stock adapter
// wraps a flashserver.Iface (ignoring tags); internal/volume supplies
// a backend that routes each tag through a QoS class of the request
// scheduler instead, which is how GC work becomes schedulable.
//
// A backend may delay operations arbitrarily, but writes carrying the
// same tag must reach the flash in issue order: the FTL allocates
// frontier pages in issue order and NAND blocks program in order.
type Backend interface {
	ReadPage(a nand.Addr, tag IOTag, cb func(data []byte, err error))
	WritePage(a nand.Addr, data []byte, tag IOTag, cb func(err error))
	EraseBlock(a nand.Addr, tag IOTag, cb func(err error))
}

// ifaceBackend adapts a flashserver.Iface: one in-order FIFO channel,
// tags dropped.
type ifaceBackend struct {
	f *flashserver.Iface
}

// IfaceBackend wraps a flashserver interface as a Backend.
func IfaceBackend(f *flashserver.Iface) Backend { return ifaceBackend{f} }

func (b ifaceBackend) ReadPage(a nand.Addr, _ IOTag, cb func([]byte, error)) {
	b.f.ReadPhysical(a, cb)
}

func (b ifaceBackend) WritePage(a nand.Addr, data []byte, _ IOTag, cb func(error)) {
	b.f.WritePhysical(a, data, cb)
}

func (b ifaceBackend) EraseBlock(a nand.Addr, _ IOTag, cb func(error)) {
	b.f.Erase(a, cb)
}

// Hooks let the layer above observe the GC lifecycle. The volume
// layer uses them to tell the request scheduler when relocation
// traffic exists and how urgent it is, so the dispatcher can defer GC
// while latency-class queues are busy and escalate as free-block
// headroom shrinks.
type Hooks struct {
	// GCStart fires when a collection is triggered (before any
	// relocation I/O is issued).
	GCStart func()
	// GCEnd fires when the collection finishes (victim erased, or the
	// pass aborted), just before the operations queued behind it
	// drain.
	GCEnd func()
	// Urgency fires whenever the free-block pool changes size, with
	// Urgency() recomputed.
	Urgency func(u float64)
}
