// Package blockfs is the backwards-compatibility path of the BlueDBM
// software stack (paper §4): a conventional file system that treats
// the FTL's logical block space as a disk, the way ext2/3/4 or a
// database would sit on the driver-level FTL. It is deliberately
// flash-oblivious — bitmap allocation, in-place overwrites — which is
// exactly what makes the FTL underneath do extra work; the ablation
// benchmarks compare its end-to-end write amplification against the
// flash-aware rfs package.
package blockfs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ftl"
)

// Block-FS errors.
var (
	ErrExists    = errors.New("blockfs: file already exists")
	ErrNotFound  = errors.New("blockfs: file not found")
	ErrNoSpace   = errors.New("blockfs: volume full")
	ErrBadOffset = errors.New("blockfs: page offset out of range")
	ErrDataSize  = errors.New("blockfs: data must be exactly one page")
)

// FS is a conventional file system over an FTL block device.
type FS struct {
	dev *ftl.FTL

	bitmap []bool // logical page allocation
	files  map[string]*inode
	free   int
}

type inode struct {
	name  string
	pages []int // logical page numbers, in file order
}

// New formats a volume on the FTL.
func New(dev *ftl.FTL) *FS {
	n := dev.LogicalPages()
	return &FS{
		dev:    dev,
		bitmap: make([]bool, n),
		files:  make(map[string]*inode),
		free:   n,
	}
}

// FreePages returns the unallocated logical pages.
func (fs *FS) FreePages() int { return fs.free }

// alloc grabs the lowest free logical page — the disk-style locality
// heuristic that means nothing on flash.
func (fs *FS) alloc() (int, error) {
	if fs.free == 0 {
		return 0, ErrNoSpace
	}
	for i, used := range fs.bitmap {
		if !used {
			fs.bitmap[i] = true
			fs.free--
			return i, nil
		}
	}
	return 0, ErrNoSpace
}

// File is an open file.
type File struct {
	fs *FS
	nd *inode
}

// Create makes an empty file.
func (fs *FS) Create(name string) (*File, error) {
	if _, dup := fs.files[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	nd := &inode{name: name}
	fs.files[name] = nd
	return &File{fs: fs, nd: nd}, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	nd, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &File{fs: fs, nd: nd}, nil
}

// Remove deletes a file and trims its logical pages.
func (fs *FS) Remove(name string) error {
	nd, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	for _, lpn := range nd.pages {
		fs.bitmap[lpn] = false
		fs.free++
		// A good citizen trims; the FTL reclaims the page lazily.
		_ = fs.dev.Trim(lpn)
	}
	delete(fs.files, name)
	return nil
}

// List returns all file names, sorted.
func (fs *FS) List() []string {
	var out []string
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Pages returns the file length in pages.
func (f *File) Pages() int { return len(f.nd.pages) }

// AppendPage adds a page at the end of the file.
func (f *File) AppendPage(data []byte, cb func(err error)) {
	lpn, err := f.fs.alloc()
	if err != nil {
		cb(err)
		return
	}
	f.nd.pages = append(f.nd.pages, lpn)
	f.fs.dev.Write(lpn, data, cb)
}

// WritePage overwrites page idx in place — the disk idiom that forces
// the FTL to remap and eventually garbage-collect.
func (f *File) WritePage(idx int, data []byte, cb func(err error)) {
	if idx < 0 || idx > len(f.nd.pages) {
		cb(fmt.Errorf("%w: %d of %d", ErrBadOffset, idx, len(f.nd.pages)))
		return
	}
	if idx == len(f.nd.pages) {
		f.AppendPage(data, cb)
		return
	}
	f.fs.dev.Write(f.nd.pages[idx], data, cb)
}

// ReadPage fetches page idx.
func (f *File) ReadPage(idx int, cb func(data []byte, err error)) {
	if idx < 0 || idx >= len(f.nd.pages) {
		cb(nil, fmt.Errorf("%w: %d of %d", ErrBadOffset, idx, len(f.nd.pages)))
		return
	}
	f.fs.dev.Read(f.nd.pages[idx], cb)
}
