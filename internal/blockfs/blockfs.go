// Package blockfs is the backwards-compatibility path of the BlueDBM
// software stack (paper §4): a conventional file system that treats
// the FTL's logical block space as a disk, the way ext2/3/4 or a
// database would sit on the driver-level FTL. It is deliberately
// flash-oblivious — bitmap allocation, in-place overwrites, and
// on-device metadata (inode table, allocation bitmap, periodic
// journal commits) written through the block device — which is
// exactly what makes the FTL underneath do extra work; the ablation
// benchmarks compare its end-to-end write amplification against the
// flash-aware rfs package, which keeps the equivalent state in host
// memory as its own page mapping (paper §4).
package blockfs

import (
	"errors"
	"fmt"
	"sort"
)

// Block-FS errors.
var (
	ErrExists    = errors.New("blockfs: file already exists")
	ErrNotFound  = errors.New("blockfs: file not found")
	ErrNoSpace   = errors.New("blockfs: volume full")
	ErrBadOffset = errors.New("blockfs: page offset out of range")
	ErrDataSize  = errors.New("blockfs: data must be exactly one page")
)

// Device is the logical block device the file system formats: a
// per-card FTL (*ftl.FTL) or a QoS-classed stream of the cluster-wide
// logical volume (*volume.Stream) — either way a flat page space the
// FS treats like a disk, which is the point of the ablation.
type Device interface {
	LogicalPages() int
	PageSize() int
	Read(lpn int, cb func(data []byte, err error))
	Write(lpn int, data []byte, cb func(err error))
	Trim(lpn int) error
}

// journalEvery is the metadata commit interval: like a disk file
// system's journal flush, every Nth in-place data write also rewrites
// the file's inode-table page through the device (mtime, journal
// commit record). Allocation changes (appends, removes) write
// metadata unconditionally — a disk FS must persist its allocation
// state. This is the §4 "small random metadata writes" behaviour that
// a conventional stack pushes through the FTL and RFS keeps in host
// memory as its own mapping.
const journalEvery = 8

// FS is a conventional file system over a logical block device.
type FS struct {
	dev Device

	bitmap []bool // logical page allocation
	files  map[string]*inode
	free   int

	formatLPN   int // superblock + allocation bitmap page
	metaBuf     []byte
	sinceCommit int

	// MetaWrites counts metadata page writes issued through the
	// device (inode table, allocation bitmap, journal commits).
	MetaWrites int64
}

type inode struct {
	name  string
	pages []int // logical page numbers, in file order
	meta  int   // LPN of this file's inode-table page
}

// New formats a volume on a block device: the first logical page
// holds the superblock and allocation bitmap, written at format time
// like any disk file system would.
func New(dev Device) *FS {
	n := dev.LogicalPages()
	fs := &FS{
		dev:     dev,
		bitmap:  make([]bool, n),
		files:   make(map[string]*inode),
		free:    n,
		metaBuf: make([]byte, dev.PageSize()),
	}
	if lpn, err := fs.alloc(); err == nil {
		fs.formatLPN = lpn
		fs.writeMeta(lpn, nil)
	}
	return fs
}

// writeMeta issues one metadata page write; cb may be nil
// (fire-and-forget, the way write-back metadata caching behaves).
func (fs *FS) writeMeta(lpn int, cb func(error)) {
	fs.MetaWrites++
	if cb == nil {
		cb = func(error) {}
	}
	fs.dev.Write(lpn, fs.metaBuf, cb)
}

// FreePages returns the unallocated logical pages.
func (fs *FS) FreePages() int { return fs.free }

// alloc grabs the lowest free logical page — the disk-style locality
// heuristic that means nothing on flash.
func (fs *FS) alloc() (int, error) {
	if fs.free == 0 {
		return 0, ErrNoSpace
	}
	for i, used := range fs.bitmap {
		if !used {
			fs.bitmap[i] = true
			fs.free--
			return i, nil
		}
	}
	return 0, ErrNoSpace
}

// File is an open file.
type File struct {
	fs *FS
	nd *inode
}

// Create makes an empty file, allocating and writing its inode-table
// page.
func (fs *FS) Create(name string) (*File, error) {
	if _, dup := fs.files[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	meta, err := fs.alloc()
	if err != nil {
		return nil, err
	}
	nd := &inode{name: name, meta: meta}
	fs.files[name] = nd
	fs.writeMeta(meta, nil)
	return &File{fs: fs, nd: nd}, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	nd, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &File{fs: fs, nd: nd}, nil
}

// Remove deletes a file and trims its logical pages, persisting the
// allocation change (bitmap page) like a disk FS.
func (fs *FS) Remove(name string) error {
	nd, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	for _, lpn := range nd.pages {
		fs.bitmap[lpn] = false
		fs.free++
		// A good citizen trims; the FTL reclaims the page lazily.
		_ = fs.dev.Trim(lpn)
	}
	fs.bitmap[nd.meta] = false
	fs.free++
	_ = fs.dev.Trim(nd.meta)
	delete(fs.files, name)
	fs.writeMeta(fs.formatLPN, nil)
	return nil
}

// List returns all file names, sorted.
func (fs *FS) List() []string {
	var out []string
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Pages returns the file length in pages.
func (f *File) Pages() int { return len(f.nd.pages) }

// PageLPN returns the device LPN backing page idx — the FIBMAP-style
// query that lets instrumentation address a file's pages through the
// block device directly. Unlike rfs physical addresses it never goes
// stale: blockfs overwrites in place, so a page keeps its LPN for the
// file's lifetime.
func (f *File) PageLPN(idx int) (int, error) {
	if idx < 0 || idx >= len(f.nd.pages) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadOffset, idx, len(f.nd.pages))
	}
	return f.nd.pages[idx], nil
}

// AppendPage adds a page at the end of the file. The allocation
// changed, so the file's inode-table page is rewritten behind the
// data — two device writes per appended page, the conventional-FS tax
// RFS avoids by keeping its mapping in host memory.
func (f *File) AppendPage(data []byte, cb func(err error)) {
	lpn, err := f.fs.alloc()
	if err != nil {
		cb(err)
		return
	}
	f.nd.pages = append(f.nd.pages, lpn)
	f.fs.dev.Write(lpn, data, func(werr error) {
		if werr != nil {
			cb(werr)
			return
		}
		f.fs.writeMeta(f.nd.meta, cb)
	})
}

// WritePage overwrites page idx in place — the disk idiom that forces
// the FTL to remap and eventually garbage-collect — with a journal
// commit (inode-table rewrite) every journalEvery-th write.
func (f *File) WritePage(idx int, data []byte, cb func(err error)) {
	if idx < 0 || idx > len(f.nd.pages) {
		cb(fmt.Errorf("%w: %d of %d", ErrBadOffset, idx, len(f.nd.pages)))
		return
	}
	if idx == len(f.nd.pages) {
		f.AppendPage(data, cb)
		return
	}
	f.fs.sinceCommit++
	commit := f.fs.sinceCommit >= journalEvery
	if commit {
		f.fs.sinceCommit = 0
	}
	f.fs.dev.Write(f.nd.pages[idx], data, func(werr error) {
		if werr != nil || !commit {
			cb(werr)
			return
		}
		f.fs.writeMeta(f.nd.meta, cb)
	})
}

// ReadPage fetches page idx.
func (f *File) ReadPage(idx int, cb func(data []byte, err error)) {
	if idx < 0 || idx >= len(f.nd.pages) {
		cb(nil, fmt.Errorf("%w: %d of %d", ErrBadOffset, idx, len(f.nd.pages)))
		return
	}
	f.fs.dev.Read(f.nd.pages[idx], cb)
}
