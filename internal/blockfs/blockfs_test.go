package blockfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/flashctl"
	"repro/internal/flashserver"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/sim"
)

type harness struct {
	eng *sim.Engine
	dev *ftl.FTL
	fs  *FS
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	eng := sim.NewEngine()
	geo := nand.Geometry{
		Buses: 2, ChipsPerBus: 1, BlocksPerChip: 8, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 64,
	}
	card, err := nand.NewCard(eng, "bfs", geo, nand.DefaultTiming(), nand.Reliability{}, 21)
	if err != nil {
		t.Fatal(err)
	}
	var sp *flashserver.Splitter
	ctl, err := flashctl.New(eng, card, flashctl.DefaultConfig(), flashctl.Handlers{
		ReadChunk:    func(tag, off int, chunk []byte, last bool) { sp.Handlers().ReadChunk(tag, off, chunk, last) },
		ReadDone:     func(tag, c int, err error) { sp.Handlers().ReadDone(tag, c, err) },
		WriteDataReq: func(tag int) { sp.Handlers().WriteDataReq(tag) },
		WriteDone:    func(tag int, err error) { sp.Handlers().WriteDone(tag, err) },
		EraseDone:    func(tag int, err error) { sp.Handlers().EraseDone(tag, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sp = flashserver.NewSplitter(ctl)
	srv := flashserver.NewServer(sp, "bfs", 16)
	dev, err := ftl.New(srv.NewIface("bfs"), geo, ftl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &harness{eng: eng, dev: dev, fs: New(dev)}
}

func (h *harness) appendPage(t *testing.T, f *File, data []byte) error {
	t.Helper()
	var result error = errors.New("pending")
	f.AppendPage(data, func(err error) { result = err })
	h.eng.Run()
	return result
}

func (h *harness) overwrite(t *testing.T, f *File, idx int, data []byte) error {
	t.Helper()
	var result error = errors.New("pending")
	f.WritePage(idx, data, func(err error) { result = err })
	h.eng.Run()
	return result
}

func (h *harness) readPage(t *testing.T, f *File, idx int) ([]byte, error) {
	t.Helper()
	var data []byte
	var result error = errors.New("pending")
	f.ReadPage(idx, func(d []byte, err error) { data, result = d, err })
	h.eng.Run()
	return data, result
}

func pg(seed byte) []byte {
	b := make([]byte, 512)
	for i := range b {
		b[i] = seed ^ byte(i)
	}
	return b
}

func TestCreateWriteReadRemove(t *testing.T) {
	h := newHarness(t)
	f, err := h.fs.Create("db.dat")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := h.appendPage(t, f, pg(byte(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	for i := 0; i < 6; i++ {
		got, err := h.readPage(t, f, i)
		if err != nil || !bytes.Equal(got, pg(byte(i))) {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	freeBefore := h.fs.FreePages()
	if err := h.fs.Remove("db.dat"); err != nil {
		t.Fatal(err)
	}
	// Six data pages plus the file's inode-table page come back.
	if h.fs.FreePages() != freeBefore+7 {
		t.Fatalf("free pages %d, want %d", h.fs.FreePages(), freeBefore+7)
	}
	if _, err := h.fs.Open("db.dat"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open removed: %v", err)
	}
}

func TestInPlaceOverwrite(t *testing.T) {
	h := newHarness(t)
	f, _ := h.fs.Create("f")
	if err := h.appendPage(t, f, pg(1)); err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= 5; v++ {
		if err := h.overwrite(t, f, 0, pg(byte(v))); err != nil {
			t.Fatalf("overwrite %d: %v", v, err)
		}
	}
	got, err := h.readPage(t, f, 0)
	if err != nil || !bytes.Equal(got, pg(5)) {
		t.Fatalf("latest version lost: %v", err)
	}
	if f.Pages() != 1 {
		t.Fatalf("in-place overwrite grew the file: %d pages", f.Pages())
	}
}

func TestVolumeFull(t *testing.T) {
	h := newHarness(t)
	f, _ := h.fs.Create("big")
	var lastErr error
	for i := 0; ; i++ {
		if err := h.appendPage(t, f, pg(byte(i))); err != nil {
			lastErr = err
			break
		}
		if i > 10000 {
			t.Fatal("volume never filled")
		}
	}
	if !errors.Is(lastErr, ErrNoSpace) && !errors.Is(lastErr, ftl.ErrNoSpace) {
		t.Fatalf("fill error: %v", lastErr)
	}
}

func TestErrorsSurface(t *testing.T) {
	h := newHarness(t)
	f, _ := h.fs.Create("f")
	if _, err := h.readPage(t, f, 0); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("read empty: %v", err)
	}
	if err := h.overwrite(t, f, 3, pg(0)); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("sparse write: %v", err)
	}
	if _, err := h.fs.Create("f"); !errors.Is(err, ErrExists) {
		t.Fatalf("dup create: %v", err)
	}
	if err := h.fs.Remove("zz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove missing: %v", err)
	}
	if got := h.fs.List(); len(got) != 1 || got[0] != "f" {
		t.Fatalf("list = %v", got)
	}
}

// TestFTLAbsorbsOverwrites shows the stack working as designed: the
// flash-oblivious FS overwrites in place, the FTL remaps and collects,
// and write amplification stays finite while data stays correct.
func TestFTLAbsorbsOverwrites(t *testing.T) {
	h := newHarness(t)
	f, _ := h.fs.Create("hot")
	// A wide working set: random overwrites leave blocks with mixed
	// valid/invalid pages, so the FTL's collector must relocate data.
	const filePages = 72
	for i := 0; i < filePages; i++ {
		if err := h.appendPage(t, f, pg(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(2)
	latest := map[int]byte{}
	for i := 0; i < 300; i++ {
		idx := rng.Intn(filePages)
		v := byte(rng.Intn(250))
		if err := h.overwrite(t, f, idx, pg(v)); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
		latest[idx] = v
	}
	for idx, v := range latest {
		got, err := h.readPage(t, f, idx)
		if err != nil || !bytes.Equal(got, pg(v)) {
			t.Fatalf("page %d: stale data after churn", idx)
		}
	}
	if h.dev.FlashErases == 0 {
		t.Fatal("FTL never collected; churn too small")
	}
	wa := h.dev.WriteAmplification()
	if wa <= 1.0 || wa > 5 {
		t.Fatalf("write amplification %.2f implausible", wa)
	}
}
