// Package hostmodel models the Xeon host server of each BlueDBM node:
// a pool of cores running software threads, and a shared DRAM with
// bounded bandwidth. The application-acceleration experiments (paper
// §7) compare in-store processors against host software whose
// throughput is set by per-item compute cost, core count, and memory
// bandwidth; this package supplies exactly those knobs.
package hostmodel

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Config describes the host machine (paper §5: 24 cores, 50 GB DRAM).
type Config struct {
	Cores           int
	DRAMBytesPerSec int64
	DRAMLatency     sim.Time
}

// DefaultConfig matches the paper's Xeon servers.
func DefaultConfig() Config {
	return Config{
		Cores:           24,
		DRAMBytesPerSec: 60_000_000_000,
		DRAMLatency:     100 * sim.Nanosecond,
	}
}

// CPU is one host's compute model.
type CPU struct {
	eng      *sim.Engine
	cfg      Config
	runnable int // threads currently executing or queued
	dram     *sim.Pipe

	busy sim.Time // accumulated core-busy time, for utilization
}

// New builds a CPU model.
func New(eng *sim.Engine, name string, cfg Config) (*CPU, error) {
	if cfg.Cores <= 0 || cfg.DRAMBytesPerSec <= 0 {
		return nil, fmt.Errorf("hostmodel: invalid config %+v", cfg)
	}
	return &CPU{
		eng:  eng,
		cfg:  cfg,
		dram: sim.NewPipe(eng, name+"/dram", cfg.DRAMBytesPerSec, cfg.DRAMLatency),
	}, nil
}

// Config returns the machine description.
func (c *CPU) Config() Config { return c.cfg }

// Utilization returns the fraction of total core-time spent busy.
func (c *CPU) Utilization() float64 {
	if c.eng.Now() == 0 {
		return 0
	}
	return float64(c.busy) / float64(int64(c.eng.Now())*int64(c.cfg.Cores))
}

// ReadDRAM charges a DRAM transfer of n bytes and runs fn when the
// data is available. All threads share the bandwidth.
func (c *CPU) ReadDRAM(n int, fn func()) {
	c.dram.Transfer(n, fn)
}

// Stats is a snapshot of the host envelope's consumption: how much of
// the shared memory-bandwidth and core budget the software running on
// this node has used. The bench JSONs report it per experiment arm so
// memory-bandwidth pressure (DRAM-cache hits, ISP merge, host scans
// all share the same pipe) is visible next to the latency numbers.
// Exported floats are NaN/Inf-guarded like the sched/volume snapshots.
type Stats struct {
	DRAMBytesMoved  int64   `json:"dram_bytes_moved"`
	DRAMTransfers   int64   `json:"dram_transfers"`
	DRAMUtilization float64 `json:"dram_utilization"`
	CPUUtilization  float64 `json:"cpu_utilization"`
	CoreBusyMs      float64 `json:"core_busy_ms"`
}

// finite clamps NaN and ±Inf to 0 so exported stats stay JSON-safe.
func finite(f float64) float64 {
	if f != f || f > math.MaxFloat64 || f < -math.MaxFloat64 {
		return 0
	}
	return f
}

// Stats returns the cumulative host-envelope counters.
func (c *CPU) Stats() Stats {
	return Stats{
		DRAMBytesMoved:  c.dram.Transferred(),
		DRAMTransfers:   c.dram.Transfers(),
		DRAMUtilization: finite(c.dram.Utilization()),
		CPUUtilization:  finite(c.Utilization()),
		CoreBusyMs:      finite(float64(c.busy) / float64(sim.Millisecond)),
	}
}

// Delta returns the counters accumulated since a prior snapshot. The
// utilization fields are gauges over the whole run and keep their
// current value (a windowed utilization would need the window's wall
// time, which the caller has; the byte and transfer counters are what
// per-arm comparisons need).
func (s Stats) Delta(since Stats) Stats {
	return Stats{
		DRAMBytesMoved:  s.DRAMBytesMoved - since.DRAMBytesMoved,
		DRAMTransfers:   s.DRAMTransfers - since.DRAMTransfers,
		DRAMUtilization: s.DRAMUtilization,
		CPUUtilization:  s.CPUUtilization,
		CoreBusyMs:      finite(s.CoreBusyMs - since.CoreBusyMs),
	}
}

// Thread is a software thread: a serial queue of compute work. Work on
// different threads runs in parallel up to the core count; beyond it,
// time-sharing stretches every running op proportionally.
type Thread struct {
	cpu     *CPU
	queue   []workItem
	running bool
	current workItem // the in-flight item; threads run strictly serially
	step    func()   // bound once: run current, then pump the queue
}

type workItem struct {
	cost sim.Time
	fn   func()
}

// NewThread creates an idle thread. The step continuation is bound
// here once and reused for every work item, so the per-item dispatch
// in next() allocates nothing.
func (c *CPU) NewThread() *Thread {
	t := &Thread{cpu: c}
	t.step = func() {
		t.current.fn()
		t.next()
	}
	return t
}

// Do queues fn to run after cost of compute. Ops on one thread are
// strictly serial.
func (t *Thread) Do(cost sim.Time, fn func()) {
	if cost < 0 {
		panic(fmt.Sprintf("hostmodel: negative cost %v", cost))
	}
	t.queue = append(t.queue, workItem{cost: cost, fn: fn})
	if !t.running {
		t.running = true
		t.cpu.runnable++
		t.next()
	}
}

func (t *Thread) next() {
	if len(t.queue) == 0 {
		t.running = false
		t.cpu.runnable--
		return
	}
	item := t.queue[0]
	t.queue[0] = workItem{}
	t.queue = t.queue[1:]
	// Time-sharing: with R runnable threads on C cores, each op takes
	// R/C times longer once R > C.
	eff := item.cost
	if r := t.cpu.runnable; r > t.cpu.cfg.Cores {
		eff = sim.Time(int64(eff) * int64(r) / int64(t.cpu.cfg.Cores))
	}
	t.cpu.busy += item.cost
	// A thread runs one item at a time (next is re-entered only from
	// step), so parking it in t.current is safe and lets the bound step
	// closure run it without a per-item capture.
	t.current = item
	t.cpu.eng.After(eff, t.step)
}
