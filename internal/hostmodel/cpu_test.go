package hostmodel

import (
	"testing"

	"repro/internal/sim"
)

func TestThreadSerialExecution(t *testing.T) {
	eng := sim.NewEngine()
	cpu, err := New(eng, "h", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	th := cpu.NewThread()
	var times []sim.Time
	for i := 0; i < 3; i++ {
		th.Do(10*sim.Microsecond, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	want := []sim.Time{10 * sim.Microsecond, 20 * sim.Microsecond, 30 * sim.Microsecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("serial times %v, want %v", times, want)
		}
	}
}

func TestThreadsParallelUpToCores(t *testing.T) {
	eng := sim.NewEngine()
	cpu, _ := New(eng, "h", Config{Cores: 4, DRAMBytesPerSec: 1e9})
	done := 0
	for i := 0; i < 4; i++ {
		cpu.NewThread().Do(100*sim.Microsecond, func() { done++ })
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if eng.Now() != 100*sim.Microsecond {
		t.Fatalf("4 threads on 4 cores took %v, want 100us", eng.Now())
	}
}

func TestOversubscriptionStretches(t *testing.T) {
	eng := sim.NewEngine()
	cpu, _ := New(eng, "h", Config{Cores: 2, DRAMBytesPerSec: 1e9})
	done := 0
	for i := 0; i < 4; i++ {
		cpu.NewThread().Do(100*sim.Microsecond, func() { done++ })
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// 4 runnable on 2 cores: each op stretches 2x.
	if eng.Now() != 200*sim.Microsecond {
		t.Fatalf("oversubscribed run took %v, want 200us", eng.Now())
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng := sim.NewEngine()
	cpu, _ := New(eng, "h", Config{Cores: 10, DRAMBytesPerSec: 1e9})
	// One thread busy 50us of a 100us window on 10 cores = 5%.
	th := cpu.NewThread()
	th.Do(50*sim.Microsecond, func() {})
	eng.Run()
	eng.RunUntil(100 * sim.Microsecond)
	u := cpu.Utilization()
	if u < 0.049 || u > 0.051 {
		t.Fatalf("utilization = %f, want 0.05", u)
	}
}

func TestDRAMBandwidthShared(t *testing.T) {
	eng := sim.NewEngine()
	cpu, _ := New(eng, "h", Config{Cores: 4, DRAMBytesPerSec: 1_000_000_000})
	var finished []sim.Time
	for i := 0; i < 4; i++ {
		cpu.ReadDRAM(1_000_000, func() { finished = append(finished, eng.Now()) })
	}
	eng.Run()
	// 4 MB total at 1 GB/s = 4 ms for the last one.
	last := finished[len(finished)-1]
	if last < 4*sim.Millisecond {
		t.Fatalf("DRAM not bandwidth-limited: last finish %v", last)
	}
}

func TestInvalidConfig(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, "h", Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestStatsSnapshotAndDelta(t *testing.T) {
	eng := sim.NewEngine()
	cpu, _ := New(eng, "h", Config{Cores: 4, DRAMBytesPerSec: 1_000_000_000})
	cpu.ReadDRAM(1_000_000, nil)
	cpu.NewThread().Do(50*sim.Microsecond, func() {})
	eng.Run()
	base := cpu.Stats()
	if base.DRAMBytesMoved != 1_000_000 || base.DRAMTransfers != 1 {
		t.Fatalf("base stats %+v", base)
	}
	if base.DRAMUtilization <= 0 || base.CPUUtilization <= 0 || base.CoreBusyMs <= 0 {
		t.Fatalf("utilization gauges not populated: %+v", base)
	}
	cpu.ReadDRAM(500_000, nil)
	cpu.ReadDRAM(500_000, nil)
	eng.Run()
	d := cpu.Stats().Delta(base)
	if d.DRAMBytesMoved != 1_000_000 || d.DRAMTransfers != 2 {
		t.Fatalf("delta %+v, want 1 MB over 2 transfers", d)
	}
	if d.CoreBusyMs != 0 {
		t.Fatalf("delta core-busy %v, want 0 (no compute in window)", d.CoreBusyMs)
	}
}

func TestStatsZeroTimeIsFinite(t *testing.T) {
	eng := sim.NewEngine()
	cpu, _ := New(eng, "h", DefaultConfig())
	s := cpu.Stats()
	// At time zero every gauge must come back as a finite number, not
	// NaN from a 0/0.
	if s.DRAMUtilization != 0 || s.CPUUtilization != 0 || s.CoreBusyMs != 0 {
		t.Fatalf("zero-time stats %+v", s)
	}
	d := s.Delta(s)
	if d != (Stats{}) {
		t.Fatalf("self-delta %+v, want zero", d)
	}
}
