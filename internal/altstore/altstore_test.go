package altstore

import (
	"testing"

	"repro/internal/sim"
)

func TestSSDSequentialApproaches600(t *testing.T) {
	eng := sim.NewEngine()
	ssd, err := NewSSD(eng, "m2", DefaultSSD())
	if err != nil {
		t.Fatal(err)
	}
	const pages = 2000
	done := 0
	for i := 0; i < pages; i++ {
		ssd.Read(8192, true, func() { done++ })
	}
	eng.Run()
	if done != pages {
		t.Fatalf("done = %d", done)
	}
	bw := float64(pages*8192) / eng.Now().Seconds()
	if bw < 450e6 || bw > 600e6 {
		t.Fatalf("sequential SSD bandwidth %.0f MB/s, want ~500-600", bw/1e6)
	}
}

func TestSSDRandomMuchSlower(t *testing.T) {
	run := func(seq bool) float64 {
		eng := sim.NewEngine()
		ssd, _ := NewSSD(eng, "m2", DefaultSSD())
		const pages = 1000
		for i := 0; i < pages; i++ {
			ssd.Read(8192, seq, func() {})
		}
		eng.Run()
		return float64(pages*8192) / eng.Now().Seconds()
	}
	seqBW, rndBW := run(true), run(false)
	if rndBW >= seqBW/1.5 {
		t.Fatalf("random (%.0f MB/s) should be well below sequential (%.0f MB/s)",
			rndBW/1e6, seqBW/1e6)
	}
	// Paper Fig 18: random 8KB well under the 600 MB/s envelope.
	if rndBW > 400e6 {
		t.Fatalf("random SSD bandwidth %.0f MB/s implausibly high", rndBW/1e6)
	}
}

func TestHDDSeekDominatedRandom(t *testing.T) {
	eng := sim.NewEngine()
	hdd, err := NewHDD(eng, "disk", DefaultHDD())
	if err != nil {
		t.Fatal(err)
	}
	const ios = 100
	done := 0
	for i := 0; i < ios; i++ {
		hdd.Read(8192, false, func() { done++ })
	}
	eng.Run()
	iops := float64(ios) / eng.Now().Seconds()
	if iops > 130 {
		t.Fatalf("random HDD IOPS %.0f, want seek-bound (~120)", iops)
	}
}

func TestHDDSequentialStream(t *testing.T) {
	eng := sim.NewEngine()
	hdd, _ := NewHDD(eng, "disk", DefaultHDD())
	const pages = 1000
	for i := 0; i < pages; i++ {
		hdd.Read(8192, true, func() {})
	}
	eng.Run()
	bw := float64(pages*8192) / eng.Now().Seconds()
	if bw < 140e6 || bw > 150e6 {
		t.Fatalf("sequential HDD %.0f MB/s, want ~147", bw/1e6)
	}
}

func TestInvalidConfigs(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewSSD(eng, "x", SSDConfig{}); err == nil {
		t.Fatal("zero SSD config accepted")
	}
	if _, err := NewHDD(eng, "x", HDDConfig{}); err == nil {
		t.Fatal("zero HDD config accepted")
	}
}
