package altstore

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestSSDSequentialApproaches600(t *testing.T) {
	eng := sim.NewEngine()
	ssd, err := NewSSD(eng, "m2", DefaultSSD())
	if err != nil {
		t.Fatal(err)
	}
	const pages = 2000
	done := 0
	for i := 0; i < pages; i++ {
		ssd.Read(8192, true, func(err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			done++
		})
	}
	eng.Run()
	if done != pages {
		t.Fatalf("done = %d", done)
	}
	bw := float64(pages*8192) / eng.Now().Seconds()
	if bw < 450e6 || bw > 600e6 {
		t.Fatalf("sequential SSD bandwidth %.0f MB/s, want ~500-600", bw/1e6)
	}
}

func TestSSDRandomMuchSlower(t *testing.T) {
	run := func(seq bool) float64 {
		eng := sim.NewEngine()
		ssd, _ := NewSSD(eng, "m2", DefaultSSD())
		const pages = 1000
		for i := 0; i < pages; i++ {
			ssd.Read(8192, seq, func(error) {})
		}
		eng.Run()
		return float64(pages*8192) / eng.Now().Seconds()
	}
	seqBW, rndBW := run(true), run(false)
	if rndBW >= seqBW/1.5 {
		t.Fatalf("random (%.0f MB/s) should be well below sequential (%.0f MB/s)",
			rndBW/1e6, seqBW/1e6)
	}
	// Paper Fig 18: random 8KB well under the 600 MB/s envelope.
	if rndBW > 400e6 {
		t.Fatalf("random SSD bandwidth %.0f MB/s implausibly high", rndBW/1e6)
	}
}

func TestSSDWriteEnvelopeMatchesRead(t *testing.T) {
	run := func(write bool) sim.Time {
		eng := sim.NewEngine()
		ssd, _ := NewSSD(eng, "m2", DefaultSSD())
		for i := 0; i < 500; i++ {
			if write {
				ssd.Write(8192, true, func(error) {})
			} else {
				ssd.Read(8192, true, func(error) {})
			}
		}
		eng.Run()
		return eng.Now()
	}
	rd, wr := run(false), run(true)
	if rd != wr {
		t.Fatalf("write envelope %v != read envelope %v", wr, rd)
	}
}

func TestHDDSeekDominatedRandom(t *testing.T) {
	eng := sim.NewEngine()
	hdd, err := NewHDD(eng, "disk", DefaultHDD())
	if err != nil {
		t.Fatal(err)
	}
	const ios = 100
	done := 0
	for i := 0; i < ios; i++ {
		hdd.Read(8192, false, func(error) { done++ })
	}
	eng.Run()
	iops := float64(ios) / eng.Now().Seconds()
	if iops > 130 {
		t.Fatalf("random HDD IOPS %.0f, want seek-bound (~120)", iops)
	}
}

func TestHDDSequentialStream(t *testing.T) {
	eng := sim.NewEngine()
	hdd, _ := NewHDD(eng, "disk", DefaultHDD())
	const pages = 1000
	for i := 0; i < pages; i++ {
		hdd.Read(8192, true, func(error) {})
	}
	eng.Run()
	bw := float64(pages*8192) / eng.Now().Seconds()
	if bw < 140e6 || bw > 150e6 {
		t.Fatalf("sequential HDD %.0f MB/s, want ~147", bw/1e6)
	}
}

func TestInvalidConfigs(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewSSD(eng, "x", SSDConfig{}); err == nil {
		t.Fatal("zero SSD config accepted")
	}
	if _, err := NewHDD(eng, "x", HDDConfig{}); err == nil {
		t.Fatal("zero HDD config accepted")
	}
}

// completionOrder issues n random reads tagged 0..n-1 against a fresh
// SSD and returns the order their completions fired.
func completionOrder(t *testing.T, n int) []int {
	t.Helper()
	eng := sim.NewEngine()
	ssd, err := NewSSD(eng, "m2", DefaultSSD())
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		ssd.Read(8192, false, func(err error) {
			if err != nil {
				t.Errorf("read %d: %v", i, err)
			}
			order = append(order, i)
		})
	}
	eng.Run()
	return order
}

// The SSD's channel TokenPool is strict-FIFO, so a burst of concurrent
// readers must complete in exactly issue order — on every run. This
// pins the determinism contract the cache's demotion tier relies on.
func TestSSDConcurrentReadersDeterministicOrder(t *testing.T) {
	const n = 64
	first := completionOrder(t, n)
	if len(first) != n {
		t.Fatalf("completed %d of %d", len(first), n)
	}
	for i, got := range first {
		if got != i {
			t.Fatalf("completion order %v: position %d is reader %d, want FIFO",
				first, i, got)
		}
	}
	for run := 0; run < 3; run++ {
		again := completionOrder(t, n)
		if fmt.Sprint(again) != fmt.Sprint(first) {
			t.Fatalf("run %d order %v differs from first %v", run, again, first)
		}
	}
}

func TestHDDConcurrentReadersDeterministicOrder(t *testing.T) {
	eng := sim.NewEngine()
	hdd, _ := NewHDD(eng, "disk", DefaultHDD())
	const n = 16
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		hdd.Read(8192, false, func(error) { order = append(order, i) })
	}
	eng.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("single-actuator order %v not FIFO at %d", order, i)
		}
	}
}

// A dead device must fail every request with ErrDead — both requests
// issued after Fail and requests still queued on a channel when the
// device dies mid-burst.
func TestDeviceFailurePropagatesTypedError(t *testing.T) {
	eng := sim.NewEngine()
	ssd, _ := NewSSD(eng, "m2", DefaultSSD())
	okBefore, deadErrs := 0, 0
	// Saturate the 4 channels plus a queued tail, then kill the device
	// after the first completion lands.
	const burst = 12
	for i := 0; i < burst; i++ {
		ssd.Read(8192, false, func(err error) {
			if err == nil {
				okBefore++
			} else if errors.Is(err, ErrDead) {
				deadErrs++
			} else {
				t.Errorf("unexpected error type: %v", err)
			}
		})
	}
	eng.After(DefaultSSD().RandomLatency+sim.Microsecond, ssd.Fail)
	eng.Run()
	if okBefore == 0 || deadErrs == 0 {
		t.Fatalf("mid-burst failure: %d ok, %d dead (want both nonzero)", okBefore, deadErrs)
	}
	if okBefore+deadErrs != burst {
		t.Fatalf("lost completions: %d ok + %d dead != %d", okBefore, deadErrs, burst)
	}
	// Post-failure requests fail synchronously with the typed error.
	var got error
	ssd.Write(8192, true, func(err error) { got = err })
	if !errors.Is(got, ErrDead) {
		t.Fatalf("write after Fail: err = %v, want ErrDead", got)
	}
	// Replace restores service.
	ssd.Replace()
	var back error = ErrDead
	ssd.Read(8192, true, func(err error) { back = err })
	eng.Run()
	if back != nil {
		t.Fatalf("read after Replace: %v", back)
	}
}

func TestHDDFailurePropagatesTypedError(t *testing.T) {
	eng := sim.NewEngine()
	hdd, _ := NewHDD(eng, "disk", DefaultHDD())
	hdd.Fail()
	var got error
	hdd.Read(8192, false, func(err error) { got = err })
	if !errors.Is(got, ErrDead) {
		t.Fatalf("read on dead HDD: err = %v, want ErrDead", got)
	}
	hdd.Replace()
	done := false
	hdd.Write(8192, true, func(err error) {
		if err != nil {
			t.Errorf("write after Replace: %v", err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("write after Replace never completed")
	}
}
