// Package altstore models the comparator storage devices of the
// paper's evaluation: the off-the-shelf M.2 PCIe SSD (600 MB/s for
// 8 KB accesses, sequential-optimized — §7.1) and a conventional hard
// disk (seek-dominated random access — Figures 17 and 21).
//
// These are black-box envelope models: the experiments only depend on
// the devices' published throughput/latency behaviour, not on their
// internals.
package altstore

import (
	"fmt"

	"repro/internal/sim"
)

// SSDConfig describes an off-the-shelf NVMe/M.2 SSD.
type SSDConfig struct {
	Channels          int      // internal parallelism
	RandomLatency     sim.Time // per-command latency for a random read
	SeqLatency        sim.Time // per-command latency when the FTL prefetcher hits
	StreamBytesPerSec int64    // interface / sequential cap
}

// DefaultSSD matches the paper's 512 GB M.2 PCIe SSD: ~600 MB/s on
// 8 KB accesses when sequential, much worse when random (Figure 18).
func DefaultSSD() SSDConfig {
	return SSDConfig{
		Channels:          4,
		RandomLatency:     110 * sim.Microsecond,
		SeqLatency:        12 * sim.Microsecond,
		StreamBytesPerSec: 600_000_000,
	}
}

// SSD is the comparator flash drive.
type SSD struct {
	eng      *sim.Engine
	cfg      SSDConfig
	channels *sim.TokenPool
	stream   *sim.Pipe

	Reads sim.Counter
}

// NewSSD builds the device.
func NewSSD(eng *sim.Engine, name string, cfg SSDConfig) (*SSD, error) {
	if cfg.Channels <= 0 || cfg.StreamBytesPerSec <= 0 {
		return nil, fmt.Errorf("altstore: invalid SSD config %+v", cfg)
	}
	return &SSD{
		eng:      eng,
		cfg:      cfg,
		channels: sim.NewTokenPool(name+"/chan", cfg.Channels),
		stream:   sim.NewPipe(eng, name+"/bus", cfg.StreamBytesPerSec, 0),
	}, nil
}

// Read fetches size bytes; sequential selects the prefetch-friendly
// path. done runs when the data is in host memory.
func (s *SSD) Read(size int, sequential bool, done func()) {
	s.Reads.Inc()
	lat := s.cfg.RandomLatency
	if sequential {
		lat = s.cfg.SeqLatency
	}
	s.channels.Acquire(1, func() {
		s.eng.After(lat, func() {
			s.channels.Release(1)
			s.stream.Transfer(size, done)
		})
	})
}

// HDDConfig describes a conventional hard disk.
type HDDConfig struct {
	Seek              sim.Time // average seek + rotational delay
	StreamBytesPerSec int64    // media transfer rate
}

// DefaultHDD is a 7200 rpm SATA disk of the paper's era.
func DefaultHDD() HDDConfig {
	return HDDConfig{
		Seek:              8 * sim.Millisecond,
		StreamBytesPerSec: 147_000_000,
	}
}

// HDD is the comparator disk: one actuator, so everything serializes.
type HDD struct {
	eng      *sim.Engine
	cfg      HDDConfig
	actuator *sim.TokenPool
	stream   *sim.Pipe

	Reads sim.Counter
}

// NewHDD builds the device.
func NewHDD(eng *sim.Engine, name string, cfg HDDConfig) (*HDD, error) {
	if cfg.StreamBytesPerSec <= 0 {
		return nil, fmt.Errorf("altstore: invalid HDD config %+v", cfg)
	}
	return &HDD{
		eng:      eng,
		cfg:      cfg,
		actuator: sim.NewTokenPool(name+"/arm", 1),
		stream:   sim.NewPipe(eng, name+"/media", cfg.StreamBytesPerSec, 0),
	}, nil
}

// Read fetches size bytes; non-sequential reads pay the seek.
func (h *HDD) Read(size int, sequential bool, done func()) {
	h.Reads.Inc()
	h.actuator.Acquire(1, func() {
		seek := h.cfg.Seek
		if sequential {
			seek = 0
		}
		h.eng.After(seek, func() {
			h.stream.Transfer(size, func() {
				h.actuator.Release(1)
				done()
			})
		})
	})
}
