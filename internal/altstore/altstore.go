// Package altstore models the comparator storage devices of the
// paper's evaluation: the off-the-shelf M.2 PCIe SSD (600 MB/s for
// 8 KB accesses, sequential-optimized — §7.1) and a conventional hard
// disk (seek-dominated random access — Figures 17 and 21).
//
// These are black-box envelope models: the experiments only depend on
// the devices' published throughput/latency behaviour, not on their
// internals. Completion callbacks carry a typed error so device
// failure propagates the same way the flash stack's fault ledger does
// (PR 8): a device that has been Fail()ed completes every request with
// ErrDead instead of silently dropping it.
package altstore

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrDead is delivered to every request issued against a device that
// has failed (see Fail). Callers treat it like the volume's
// uncorrectable-read errors: typed, inspectable, never swallowed.
var ErrDead = errors.New("altstore: device failed")

// SSDConfig describes an off-the-shelf NVMe/M.2 SSD.
type SSDConfig struct {
	Channels          int      // internal parallelism
	RandomLatency     sim.Time // per-command latency for a random read
	SeqLatency        sim.Time // per-command latency when the FTL prefetcher hits
	StreamBytesPerSec int64    // interface / sequential cap
}

// DefaultSSD matches the paper's 512 GB M.2 PCIe SSD: ~600 MB/s on
// 8 KB accesses when sequential, much worse when random (Figure 18).
func DefaultSSD() SSDConfig {
	return SSDConfig{
		Channels:          4,
		RandomLatency:     110 * sim.Microsecond,
		SeqLatency:        12 * sim.Microsecond,
		StreamBytesPerSec: 600_000_000,
	}
}

// SSD is the comparator flash drive.
type SSD struct {
	eng      *sim.Engine
	cfg      SSDConfig
	channels *sim.TokenPool
	stream   *sim.Pipe
	dead     bool

	Reads  sim.Counter
	Writes sim.Counter
}

// NewSSD builds the device.
func NewSSD(eng *sim.Engine, name string, cfg SSDConfig) (*SSD, error) {
	if cfg.Channels <= 0 || cfg.StreamBytesPerSec <= 0 {
		return nil, fmt.Errorf("altstore: invalid SSD config %+v", cfg)
	}
	return &SSD{
		eng:      eng,
		cfg:      cfg,
		channels: sim.NewTokenPool(name+"/chan", cfg.Channels),
		stream:   sim.NewPipe(eng, name+"/bus", cfg.StreamBytesPerSec, 0),
	}, nil
}

// Fail marks the device dead: every request from now on completes
// immediately with ErrDead.
func (s *SSD) Fail() { s.dead = true }

// Replace models swapping in a fresh drive: requests succeed again.
func (s *SSD) Replace() { s.dead = false }

// Read fetches size bytes; sequential selects the prefetch-friendly
// path. done runs when the data is in host memory.
//
//simlint:once done
func (s *SSD) Read(size int, sequential bool, done func(error)) {
	s.Reads.Inc()
	s.access(size, sequential, done)
}

// Write stores size bytes. The envelope model charges writes the same
// command latency and interface bandwidth as reads — the published
// numbers for the paper's M.2 drive are symmetric at this granularity.
//
//simlint:once done
func (s *SSD) Write(size int, sequential bool, done func(error)) {
	s.Writes.Inc()
	s.access(size, sequential, done)
}

//simlint:once done
func (s *SSD) access(size int, sequential bool, done func(error)) {
	if s.dead {
		done(ErrDead)
		return
	}
	lat := s.cfg.RandomLatency
	if sequential {
		lat = s.cfg.SeqLatency
	}
	s.channels.Acquire(1, func() {
		s.eng.After(lat, func() {
			s.channels.Release(1)
			if s.dead {
				done(ErrDead)
				return
			}
			s.stream.Transfer(size, func() { done(nil) })
		})
	})
}

// HDDConfig describes a conventional hard disk.
type HDDConfig struct {
	Seek              sim.Time // average seek + rotational delay
	StreamBytesPerSec int64    // media transfer rate
}

// DefaultHDD is a 7200 rpm SATA disk of the paper's era.
func DefaultHDD() HDDConfig {
	return HDDConfig{
		Seek:              8 * sim.Millisecond,
		StreamBytesPerSec: 147_000_000,
	}
}

// HDD is the comparator disk: one actuator, so everything serializes.
type HDD struct {
	eng      *sim.Engine
	cfg      HDDConfig
	actuator *sim.TokenPool
	stream   *sim.Pipe
	dead     bool

	Reads  sim.Counter
	Writes sim.Counter
}

// NewHDD builds the device.
func NewHDD(eng *sim.Engine, name string, cfg HDDConfig) (*HDD, error) {
	if cfg.StreamBytesPerSec <= 0 {
		return nil, fmt.Errorf("altstore: invalid HDD config %+v", cfg)
	}
	return &HDD{
		eng:      eng,
		cfg:      cfg,
		actuator: sim.NewTokenPool(name+"/arm", 1),
		stream:   sim.NewPipe(eng, name+"/media", cfg.StreamBytesPerSec, 0),
	}, nil
}

// Fail marks the device dead: every request from now on completes
// immediately with ErrDead.
func (h *HDD) Fail() { h.dead = true }

// Replace models swapping in a fresh drive: requests succeed again.
func (h *HDD) Replace() { h.dead = false }

// Read fetches size bytes; non-sequential reads pay the seek.
//
//simlint:once done
func (h *HDD) Read(size int, sequential bool, done func(error)) {
	h.Reads.Inc()
	h.access(size, sequential, done)
}

// Write stores size bytes; non-sequential writes pay the seek. Media
// rate is symmetric for a disk.
//
//simlint:once done
func (h *HDD) Write(size int, sequential bool, done func(error)) {
	h.Writes.Inc()
	h.access(size, sequential, done)
}

//simlint:once done
func (h *HDD) access(size int, sequential bool, done func(error)) {
	if h.dead {
		done(ErrDead)
		return
	}
	h.actuator.Acquire(1, func() {
		seek := h.cfg.Seek
		if sequential {
			seek = 0
		}
		h.eng.After(seek, func() {
			if h.dead {
				h.actuator.Release(1)
				done(ErrDead)
				return
			}
			h.stream.Transfer(size, func() {
				h.actuator.Release(1)
				done(nil)
			})
		})
	})
}
