package isp

import (
	"testing"
	"testing/quick"
)

func TestSchedulerGrantsUpToUnits(t *testing.T) {
	s, err := NewScheduler("units", 2)
	if err != nil {
		t.Fatal(err)
	}
	var running []func()
	for i := 0; i < 5; i++ {
		s.Submit(func(done func()) { running = append(running, done) })
	}
	if len(running) != 2 {
		t.Fatalf("granted %d, want 2 (unit count)", len(running))
	}
	if s.Busy() != 2 || s.Queued() != 3 {
		t.Fatalf("busy=%d queued=%d", s.Busy(), s.Queued())
	}
}

func TestSchedulerFIFOOrder(t *testing.T) {
	s, _ := NewScheduler("fifo", 1)
	var order []int
	var release func()
	s.Submit(func(done func()) { release = done })
	for i := 0; i < 4; i++ {
		i := i
		s.Submit(func(done func()) {
			order = append(order, i)
			done()
		})
	}
	release() // queued requests drain in order, each releasing immediately
	want := []int{0, 1, 2, 3}
	if len(order) != 4 {
		t.Fatalf("drained %d of 4", len(order))
	}
	for i, v := range order {
		if v != want[i] {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if s.Busy() != 0 {
		t.Fatalf("busy=%d after drain", s.Busy())
	}
}

func TestSchedulerStats(t *testing.T) {
	s, _ := NewScheduler("stats", 1)
	var rel func()
	s.Submit(func(done func()) { rel = done })
	s.Submit(func(done func()) { done() })
	if s.Grants != 1 || s.Waits != 1 {
		t.Fatalf("grants=%d waits=%d", s.Grants, s.Waits)
	}
	rel()
	if s.Grants != 2 {
		t.Fatalf("grants=%d after drain", s.Grants)
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler("bad", 0); err == nil {
		t.Fatal("zero units accepted")
	}
}

func TestSchedulerOverReleasePanics(t *testing.T) {
	s, _ := NewScheduler("p", 1)
	var rel func()
	s.Submit(func(done func()) { rel = done })
	rel()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	rel()
}

// Property: for any submit/complete interleaving, busy never exceeds
// units and all submitted work eventually runs.
func TestSchedulerConservationProperty(t *testing.T) {
	prop := func(ops []bool, unitsRaw uint8) bool {
		units := int(unitsRaw%4) + 1
		s, err := NewScheduler("q", units)
		if err != nil {
			return false
		}
		var releases []func()
		ran := 0
		submitted := 0
		for _, op := range ops {
			if op {
				submitted++
				s.Submit(func(done func()) {
					ran++
					releases = append(releases, done)
				})
			} else if len(releases) > 0 {
				r := releases[0]
				releases = releases[1:]
				r()
			}
			if s.Busy() > units {
				return false
			}
		}
		// Drain everything.
		for len(releases) > 0 {
			r := releases[0]
			releases = releases[1:]
			r()
		}
		return ran == submitted && s.Busy() == 0 && s.Queued() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerDoubleDoneWithWaitersPanics: the old accounting bug —
// with waiters queued, a double done handed the queue head a phantom
// unit, silently running units+1 bodies concurrently. Each grant's
// done is single-shot now: the second call must panic, with or
// without a queue.
func TestSchedulerDoubleDoneWithWaitersPanics(t *testing.T) {
	s, _ := NewScheduler("dd", 1)
	var rel func()
	s.Submit(func(done func()) { rel = done })
	running := 0
	for i := 0; i < 2; i++ {
		s.Submit(func(done func()) { running++ })
	}
	rel() // legitimate: hands the unit to the first waiter
	if running != 1 {
		t.Fatalf("%d waiters running, want 1", running)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double done with waiters queued did not panic")
		}
		if s.Busy() > s.Units() {
			t.Fatalf("busy %d exceeds %d units", s.Busy(), s.Units())
		}
	}()
	rel() // the bug: previously popped the next waiter onto a phantom unit
}

// TestSchedulerReenqueueInsideGrant: callbacks that submit more work
// from inside a granted body (before and after calling done) keep
// FIFO order and consistent Grants/Waits accounting.
func TestSchedulerReenqueueInsideGrant(t *testing.T) {
	s, _ := NewScheduler("re", 1)
	var order []string
	submitted := 0
	submit := func(name string, body func(done func())) {
		submitted++
		s.Submit(func(done func()) {
			order = append(order, name)
			body(done)
		})
	}
	var hold func()
	submit("a", func(done func()) { hold = done })
	submit("b", func(done func()) { done() })
	// a re-enqueues c while b waits: c must run AFTER b, not jump it.
	submitted++
	s.Submit(func(done func()) {
		order = append(order, "c")
		// re-enqueue from inside done-chain: d goes to the tail.
		submitted++
		s.Submit(func(d2 func()) {
			order = append(order, "d")
			d2()
		})
		done()
	})
	hold()
	want := []string{"a", "b", "c", "d"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if s.Grants != int64(submitted) {
		t.Fatalf("grants %d != submitted %d", s.Grants, submitted)
	}
	if s.Waits != 3 { // b, c queued behind a; d queued behind c's drain
		t.Fatalf("waits = %d, want 3", s.Waits)
	}
	if s.Busy() != 0 || s.Queued() != 0 {
		t.Fatalf("busy=%d queued=%d after drain", s.Busy(), s.Queued())
	}
}

// TestSchedulerDeepSynchronousDrain: a long chain of synchronous
// completions drains iteratively (one release used to recurse one
// stack frame per waiter) with exact accounting.
func TestSchedulerDeepSynchronousDrain(t *testing.T) {
	s, _ := NewScheduler("deep", 1)
	var rel func()
	s.Submit(func(done func()) { rel = done })
	const n = 200000
	ran := 0
	for i := 0; i < n; i++ {
		s.Submit(func(done func()) {
			ran++
			done()
		})
	}
	rel()
	if ran != n {
		t.Fatalf("ran %d of %d", ran, n)
	}
	if s.Grants != n+1 || s.Waits != n {
		t.Fatalf("grants=%d waits=%d", s.Grants, s.Waits)
	}
	if s.Busy() != 0 || s.Queued() != 0 {
		t.Fatalf("busy=%d queued=%d after drain", s.Busy(), s.Queued())
	}
}
