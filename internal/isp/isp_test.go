package isp

import (
	"testing"
	"testing/quick"
)

func TestSchedulerGrantsUpToUnits(t *testing.T) {
	s, err := NewScheduler("units", 2)
	if err != nil {
		t.Fatal(err)
	}
	var running []func()
	for i := 0; i < 5; i++ {
		s.Submit(func(done func()) { running = append(running, done) })
	}
	if len(running) != 2 {
		t.Fatalf("granted %d, want 2 (unit count)", len(running))
	}
	if s.Busy() != 2 || s.Queued() != 3 {
		t.Fatalf("busy=%d queued=%d", s.Busy(), s.Queued())
	}
}

func TestSchedulerFIFOOrder(t *testing.T) {
	s, _ := NewScheduler("fifo", 1)
	var order []int
	var release func()
	s.Submit(func(done func()) { release = done })
	for i := 0; i < 4; i++ {
		i := i
		s.Submit(func(done func()) {
			order = append(order, i)
			done()
		})
	}
	release() // queued requests drain in order, each releasing immediately
	want := []int{0, 1, 2, 3}
	if len(order) != 4 {
		t.Fatalf("drained %d of 4", len(order))
	}
	for i, v := range order {
		if v != want[i] {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if s.Busy() != 0 {
		t.Fatalf("busy=%d after drain", s.Busy())
	}
}

func TestSchedulerStats(t *testing.T) {
	s, _ := NewScheduler("stats", 1)
	var rel func()
	s.Submit(func(done func()) { rel = done })
	s.Submit(func(done func()) { done() })
	if s.Grants != 1 || s.Waits != 1 {
		t.Fatalf("grants=%d waits=%d", s.Grants, s.Waits)
	}
	rel()
	if s.Grants != 2 {
		t.Fatalf("grants=%d after drain", s.Grants)
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler("bad", 0); err == nil {
		t.Fatal("zero units accepted")
	}
}

func TestSchedulerOverReleasePanics(t *testing.T) {
	s, _ := NewScheduler("p", 1)
	var rel func()
	s.Submit(func(done func()) { rel = done })
	rel()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	rel()
}

// Property: for any submit/complete interleaving, busy never exceeds
// units and all submitted work eventually runs.
func TestSchedulerConservationProperty(t *testing.T) {
	prop := func(ops []bool, unitsRaw uint8) bool {
		units := int(unitsRaw%4) + 1
		s, err := NewScheduler("q", units)
		if err != nil {
			return false
		}
		var releases []func()
		ran := 0
		submitted := 0
		for _, op := range ops {
			if op {
				submitted++
				s.Submit(func(done func()) {
					ran++
					releases = append(releases, done)
				})
			} else if len(releases) > 0 {
				r := releases[0]
				releases = releases[1:]
				r()
			}
			if s.Busy() > units {
				return false
			}
		}
		// Drain everything.
		for len(releases) > 0 {
			r := releases[0]
			releases = releases[1:]
			r()
		}
		return ran == submitted && s.Busy() == 0 && s.Queued() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
