// Package isp is the in-store processor framework (paper §3, §4): the
// hardware-software codesign surface on which user-defined processing
// engines are built. An engine is given the node's four services —
// flash interface, network interface, host interface, and DRAM buffer
// (Figure 2) — via core.Node, and is driven by requests from host
// software.
//
// Because multiple application instances compete for a finite number
// of hardware acceleration units, the package also provides the
// FIFO request scheduler the paper describes in §4.
package isp

import (
	"fmt"

	"repro/internal/core"
)

// Engine is a user-defined in-store processing engine. Engines are
// instantiated per node (like bitstreams loaded into that node's
// FPGA fabric) and serve requests submitted through a Scheduler.
type Engine interface {
	// Name identifies the engine type (for diagnostics).
	Name() string
	// Attach binds the engine to a node's services. Called once.
	Attach(node *core.Node) error
}

// Scheduler assigns hardware acceleration units to competing user
// applications with a simple FIFO policy (paper §4).
//
// Invariants, which hold under any interleaving of Submit and done —
// including callbacks that re-enqueue work or complete synchronously
// from inside a grant:
//
//   - at most `units` grants are outstanding at once;
//   - a fresh Submit never overtakes queued waiters, even if a unit
//     is momentarily free mid-handoff;
//   - each grant owns exactly one release: calling its done twice
//     panics instead of silently over-granting (the old failure mode:
//     with waiters queued, a double done handed the queue head a
//     phantom unit, so units+1 bodies ran concurrently and
//     Grants/busy drifted apart without tripping any check).
type Scheduler struct {
	name  string
	units int
	busy  int
	queue []func(done func())

	// release bookkeeping: frees counts units returned but not yet
	// redistributed; draining marks the redistribution loop live so a
	// synchronous done inside a granted callback feeds the running
	// loop instead of recursing one stack frame per waiter.
	frees    int
	draining bool

	// stats
	Grants int64
	Waits  int64
}

// NewScheduler creates a scheduler over `units` identical acceleration
// units.
func NewScheduler(name string, units int) (*Scheduler, error) {
	if units <= 0 {
		return nil, fmt.Errorf("isp: scheduler %q needs at least one unit", name)
	}
	return &Scheduler{name: name, units: units}, nil
}

// Units returns the unit count.
func (s *Scheduler) Units() int { return s.units }

// Busy returns how many units are currently assigned.
func (s *Scheduler) Busy() int { return s.busy }

// Queued returns how many requests are waiting.
func (s *Scheduler) Queued() int { return len(s.queue) }

// Submit requests an acceleration unit. fn runs when one is assigned
// and must call done() exactly once to release it; queued requests
// are served FIFO. The queue check alongside busy keeps FIFO airtight:
// a free unit with waiters queued (transient during a drain) must go
// to the queue head, never to a fresh submission.
//
//simlint:once fn
func (s *Scheduler) Submit(fn func(done func())) {
	if s.busy < s.units && len(s.queue) == 0 {
		s.busy++
		s.grant(fn)
		return
	}
	s.Waits++
	s.queue = append(s.queue, fn)
}

// grant starts fn on an assigned unit with a single-shot done.
//
//simlint:once fn
func (s *Scheduler) grant(fn func(done func())) {
	s.Grants++
	released := false
	fn(func() {
		if released {
			panic(fmt.Sprintf("isp: scheduler %q: done called twice for one grant", s.name))
		}
		released = true
		s.release()
	})
}

// release redistributes freed units: each goes to the queue head (the
// FIFO handoff) or, with no waiters, back to the pool. The loop is
// iterative — a granted callback that completes synchronously lands
// its free on the already-running drain instead of recursing, so a
// long chain of instant completions cannot overflow the stack.
func (s *Scheduler) release() {
	s.frees++
	if s.draining {
		return
	}
	s.draining = true
	for s.frees > 0 {
		s.frees--
		if len(s.queue) > 0 {
			fn := s.queue[0]
			s.queue[0] = nil
			s.queue = s.queue[1:]
			s.grant(fn)
			continue
		}
		s.busy--
		if s.busy < 0 {
			panic(fmt.Sprintf("isp: scheduler %q released more units than granted", s.name))
		}
	}
	s.draining = false
}
