// Package isp is the in-store processor framework (paper §3, §4): the
// hardware-software codesign surface on which user-defined processing
// engines are built. An engine is given the node's four services —
// flash interface, network interface, host interface, and DRAM buffer
// (Figure 2) — via core.Node, and is driven by requests from host
// software.
//
// Because multiple application instances compete for a finite number
// of hardware acceleration units, the package also provides the
// FIFO request scheduler the paper describes in §4.
package isp

import (
	"fmt"

	"repro/internal/core"
)

// Engine is a user-defined in-store processing engine. Engines are
// instantiated per node (like bitstreams loaded into that node's
// FPGA fabric) and serve requests submitted through a Scheduler.
type Engine interface {
	// Name identifies the engine type (for diagnostics).
	Name() string
	// Attach binds the engine to a node's services. Called once.
	Attach(node *core.Node) error
}

// Scheduler assigns hardware acceleration units to competing user
// applications with a simple FIFO policy (paper §4).
type Scheduler struct {
	name  string
	units int
	busy  int
	queue []func(done func())

	// stats
	Grants int64
	Waits  int64
}

// NewScheduler creates a scheduler over `units` identical acceleration
// units.
func NewScheduler(name string, units int) (*Scheduler, error) {
	if units <= 0 {
		return nil, fmt.Errorf("isp: scheduler %q needs at least one unit", name)
	}
	return &Scheduler{name: name, units: units}, nil
}

// Units returns the unit count.
func (s *Scheduler) Units() int { return s.units }

// Busy returns how many units are currently assigned.
func (s *Scheduler) Busy() int { return s.busy }

// Queued returns how many requests are waiting.
func (s *Scheduler) Queued() int { return len(s.queue) }

// Submit requests an acceleration unit. fn runs when one is assigned
// and must call done() to release it; queued requests are served FIFO.
func (s *Scheduler) Submit(fn func(done func())) {
	if s.busy < s.units {
		s.busy++
		s.Grants++
		fn(s.release)
		return
	}
	s.Waits++
	s.queue = append(s.queue, fn)
}

func (s *Scheduler) release() {
	if len(s.queue) > 0 {
		fn := s.queue[0]
		s.queue = s.queue[1:]
		s.Grants++
		fn(s.release)
		return
	}
	s.busy--
	if s.busy < 0 {
		panic(fmt.Sprintf("isp: scheduler %q released more units than granted", s.name))
	}
}
