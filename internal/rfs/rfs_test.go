package rfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/flashctl"
	"repro/internal/flashserver"
	"repro/internal/nand"
	"repro/internal/sim"
)

func smallGeo() nand.Geometry {
	return nand.Geometry{
		Buses: 2, ChipsPerBus: 1, BlocksPerChip: 8, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 64,
	}
}

type harness struct {
	eng *sim.Engine
	fs  *FS
	srv *flashserver.Server
}

func newHarness(t *testing.T, geo nand.Geometry) *harness {
	t.Helper()
	eng := sim.NewEngine()
	card, err := nand.NewCard(eng, "card", geo, nand.DefaultTiming(), nand.Reliability{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sp *flashserver.Splitter
	ctl, err := flashctl.New(eng, card, flashctl.DefaultConfig(), flashctl.Handlers{
		ReadChunk:    func(tag, off int, chunk []byte, last bool) { sp.Handlers().ReadChunk(tag, off, chunk, last) },
		ReadDone:     func(tag, c int, err error) { sp.Handlers().ReadDone(tag, c, err) },
		WriteDataReq: func(tag int) { sp.Handlers().WriteDataReq(tag) },
		WriteDone:    func(tag int, err error) { sp.Handlers().WriteDone(tag, err) },
		EraseDone:    func(tag int, err error) { sp.Handlers().EraseDone(tag, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sp = flashserver.NewSplitter(ctl)
	srv := flashserver.NewServer(sp, "fs", 16)
	fs, err := New(srv.NewIface("fs"), geo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &harness{eng: eng, fs: fs, srv: srv}
}

func (h *harness) appendPage(t *testing.T, f *File, data []byte) error {
	t.Helper()
	var result error = errors.New("append never completed")
	f.AppendPage(data, func(err error) { result = err })
	h.eng.Run()
	return result
}

func (h *harness) readPage(t *testing.T, f *File, idx int) ([]byte, error) {
	t.Helper()
	var data []byte
	var result error = errors.New("read never completed")
	f.ReadPage(idx, func(d []byte, err error) { data, result = d, err })
	h.eng.Run()
	return data, result
}

func pg(geo nand.Geometry, seed byte) []byte {
	b := make([]byte, geo.PageSize)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestCreateWriteRead(t *testing.T) {
	geo := smallGeo()
	h := newHarness(t, geo)
	f, err := h.fs.Create("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := h.appendPage(t, f, pg(geo, byte(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if f.Pages() != 5 {
		t.Fatalf("pages = %d", f.Pages())
	}
	for i := 0; i < 5; i++ {
		got, err := h.readPage(t, f, i)
		if err != nil || !bytes.Equal(got, pg(geo, byte(i))) {
			t.Fatalf("page %d: err=%v", i, err)
		}
	}
}

func TestOpenAndList(t *testing.T) {
	h := newHarness(t, smallGeo())
	for _, name := range []string{"b", "a", "c"} {
		if _, err := h.fs.Create(name); err != nil {
			t.Fatal(err)
		}
	}
	names := h.fs.List()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("list = %v", names)
	}
	if _, err := h.fs.Open("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.fs.Open("zz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := h.fs.Create("a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestOverwritePage(t *testing.T) {
	geo := smallGeo()
	h := newHarness(t, geo)
	f, _ := h.fs.Create("f")
	if err := h.appendPage(t, f, pg(geo, 1)); err != nil {
		t.Fatal(err)
	}
	var werr error = errors.New("pending")
	f.WritePage(0, pg(geo, 2), func(err error) { werr = err })
	h.eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	got, err := h.readPage(t, f, 0)
	if err != nil || !bytes.Equal(got, pg(geo, 2)) {
		t.Fatalf("overwrite lost: err=%v", err)
	}
}

func TestRemoveInvalidatesAndReclaims(t *testing.T) {
	geo := smallGeo()
	h := newHarness(t, geo)
	// Fill most of the FS, remove it all, then write again: cleaning
	// must reclaim the dead segments.
	for round := 0; round < 6; round++ {
		f, err := h.fs.Create("tmp")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if err := h.appendPage(t, f, pg(geo, byte(i))); err != nil {
				t.Fatalf("round %d append %d: %v", round, i, err)
			}
		}
		if err := h.fs.Remove("tmp"); err != nil {
			t.Fatal(err)
		}
	}
	if h.fs.SegsCleaned == 0 {
		t.Fatal("cleaner never ran despite 6x fill/remove")
	}
}

func TestPhysicalAddrsAndATU(t *testing.T) {
	geo := smallGeo()
	h := newHarness(t, geo)
	f, _ := h.fs.Create("scan.dat")
	for i := 0; i < 6; i++ {
		if err := h.appendPage(t, f, pg(geo, byte(0x30+i))); err != nil {
			t.Fatal(err)
		}
	}
	addrs, err := f.PhysicalAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 6 {
		t.Fatalf("addrs = %d", len(addrs))
	}
	// Log-structured allocation must stripe across both buses.
	buses := map[int]bool{}
	for _, a := range addrs {
		buses[a.Addr.Bus] = true
	}
	if len(buses) < 1 {
		t.Fatal("no addresses at all")
	}
	// Export to an ATU and read through the flash server path.
	if err := f.ExportATU(h.srv.ATU()); err != nil {
		t.Fatal(err)
	}
	iface := h.srv.NewIface("isp")
	var got []byte
	iface.ReadFile(f.Handle(), 3, func(d []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = d
	})
	h.eng.Run()
	if !bytes.Equal(got, pg(geo, 0x33)) {
		t.Fatal("ATU read returned wrong page")
	}
}

func TestCleaningPreservesData(t *testing.T) {
	geo := smallGeo()
	h := newHarness(t, geo)
	keep, _ := h.fs.Create("keep")
	for i := 0; i < 10; i++ {
		if err := h.appendPage(t, keep, pg(geo, byte(0x50+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Churn temp files until cleaning has definitely moved pages.
	for round := 0; round < 12 && h.fs.CleanMoves == 0; round++ {
		name := "churn"
		f, err := h.fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := h.appendPage(t, f, pg(geo, byte(i))); err != nil {
				t.Fatalf("churn write: %v", err)
			}
		}
		if err := h.fs.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := h.readPage(t, keep, i)
		if err != nil || !bytes.Equal(got, pg(geo, byte(0x50+i))) {
			t.Fatalf("kept file corrupted at page %d after cleaning (moves=%d): %v",
				i, h.fs.CleanMoves, err)
		}
	}
}

func TestReadErrors(t *testing.T) {
	geo := smallGeo()
	h := newHarness(t, geo)
	f, _ := h.fs.Create("f")
	if _, err := h.readPage(t, f, 0); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("read empty file: %v", err)
	}
	var werr error
	f.WritePage(5, pg(geo, 0), func(err error) { werr = err })
	h.eng.Run()
	if !errors.Is(werr, ErrBadOffset) {
		t.Fatalf("sparse write: %v", werr)
	}
	var serr error
	f.AppendPage([]byte{1, 2}, func(err error) { serr = err })
	h.eng.Run()
	if !errors.Is(serr, ErrDataSize) {
		t.Fatalf("short append: %v", serr)
	}
}

func TestFillToCapacity(t *testing.T) {
	geo := smallGeo() // 128 pages total
	h := newHarness(t, geo)
	f, _ := h.fs.Create("big")
	var lastErr error
	n := 0
	for i := 0; i < 200; i++ {
		if err := h.appendPage(t, f, pg(geo, byte(i))); err != nil {
			lastErr = err
			break
		}
		n++
	}
	if !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v after %d pages", lastErr, n)
	}
	// Everything written before the failure must still read back.
	for i := 0; i < n; i++ {
		got, err := h.readPage(t, f, i)
		if err != nil || !bytes.Equal(got, pg(geo, byte(i))) {
			t.Fatalf("page %d lost after device filled", i)
		}
	}
}

// Property: a random series of creates/appends/overwrites/removes
// matches an in-memory oracle.
func TestFSOracleProperty(t *testing.T) {
	geo := nand.Geometry{
		Buses: 1, ChipsPerBus: 1, BlocksPerChip: 8, PagesPerBlock: 4,
		PageSize: 64, OOBSize: 8,
	}
	names := []string{"a", "b", "c"}
	prop := func(ops []uint16) bool {
		h := newHarness(t, geo)
		oracle := map[string][][]byte{}
		for i, op := range ops {
			name := names[int(op)%len(names)]
			switch op % 4 {
			case 0: // create
				_, err := h.fs.Create(name)
				if _, exists := oracle[name]; exists {
					if !errors.Is(err, ErrExists) {
						return false
					}
				} else if err == nil {
					oracle[name] = [][]byte{}
				} else {
					return false
				}
			case 1, 2: // append
				pages, ok := oracle[name]
				if !ok {
					continue
				}
				f, err := h.fs.Open(name)
				if err != nil {
					return false
				}
				data := bytes.Repeat([]byte{byte(i)}, geo.PageSize)
				var werr error = errors.New("pending")
				f.AppendPage(data, func(err error) { werr = err })
				h.eng.Run()
				if werr != nil {
					if errors.Is(werr, ErrNoSpace) {
						// The failed append left a hole at the end; the
						// oracle drops it like the FS reports it.
						oracle[name] = append(pages, nil)
						continue
					}
					return false
				}
				oracle[name] = append(pages, data)
			case 3: // remove
				_, ok := oracle[name]
				err := h.fs.Remove(name)
				if ok && err != nil {
					return false
				}
				if !ok && !errors.Is(err, ErrNotFound) {
					return false
				}
				delete(oracle, name)
			}
		}
		// Verify all surviving contents.
		for name, pages := range oracle {
			f, err := h.fs.Open(name)
			if err != nil {
				return false
			}
			for idx, want := range pages {
				got, err := h.readPage(t, f, idx)
				if want == nil {
					if err == nil {
						return false
					}
					continue
				}
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
