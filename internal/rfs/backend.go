package rfs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flashserver"
	"repro/internal/nand"
	"repro/internal/sched"
)

// Layout describes the physical log a file system instance manages:
// Chips independent allocation frontiers, each owning SegsPerChip
// erase segments of PagesPerSeg pages. Lanes is how many parallel app
// write lanes the backend needs traffic split into — each lane gets
// its own frontier per chip, so writes admitted through independently
// scheduled channels never interleave programs inside one NAND block
// (the in-order-per-block programming rule). The FS adds one more
// internal lane for segment-cleaning relocation on top of Lanes.
type Layout struct {
	Chips       int
	SegsPerChip int
	PagesPerSeg int
	PageSize    int
	Lanes       int
}

// Validate sanity-checks a layout.
func (l Layout) Validate() error {
	if l.Chips < 1 || l.SegsPerChip < 1 || l.PagesPerSeg < 1 || l.PageSize < 1 || l.Lanes < 1 {
		return fmt.Errorf("rfs: degenerate layout %+v", l)
	}
	return nil
}

// TotalSegs returns the number of erase segments in the log.
func (l Layout) TotalSegs() int { return l.Chips * l.SegsPerChip }

// TotalPages returns the number of flash pages in the log.
func (l Layout) TotalPages() int { return l.TotalSegs() * l.PagesPerSeg }

// Backend is the physical storage a file system runs over. The FS
// core (inodes, log-structured allocation, per-chip frontiers,
// segment cleaning, backrefs) is generic over it: the same code runs
// on a single flash card through a flashserver interface
// (CardBackend) or striped over every chip of every card of every
// node of a cluster with all I/O admitted through the request
// scheduler (ClusterBackend).
//
// Pages are named by linear ppn: seg*PagesPerSeg+offset, with
// chipOf(seg) = seg/SegsPerChip. class is the QoS class of the file
// handle that issued the op; clean marks the FS's own
// segment-cleaning traffic (relocation copies and victim erases),
// which QoS-aware backends admit on the scheduler's Background class
// so the dispatcher can defer it behind latency-class tenants.
// Backends that have no scheduler (CardBackend) ignore both.
type Backend interface {
	Layout() Layout
	// Addr resolves a linear ppn to its cluster-wide physical
	// location — the unit of the physical-address query (Figure 8,
	// step 1) that applications hand to in-store processors.
	Addr(ppn int) core.PageAddr
	ReadPage(ppn int, class sched.Class, clean bool, cb func(data []byte, err error))
	WritePage(ppn int, class sched.Class, clean bool, data []byte, cb func(err error))
	// EraseSeg erases one segment (cleaning traffic by definition).
	EraseSeg(seg int, cb func(err error))
}

// CardBackend runs the file system over one flash card's in-order
// flashserver interface — the original single-node RFS deployment,
// and the backend of the blockfs-vs-RFS write-amplification ablation.
// There is no scheduler on this path, so op classes are ignored; the
// interface's FIFO ordering is what keeps NAND programming in order,
// so a single app lane suffices.
type CardBackend struct {
	iface *flashserver.Iface
	geo   nand.Geometry

	// Node and Card locate the card in a cluster for Addr results;
	// they default to 0 and may be set before the backend is used so
	// physical-address queries carry the right owner.
	Node int
	Card int
}

// NewCardBackend wraps a flashserver interface and its card geometry.
func NewCardBackend(iface *flashserver.Iface, geo nand.Geometry) (*CardBackend, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	return &CardBackend{iface: iface, geo: geo}, nil
}

// Layout maps the card geometry onto the log: one frontier per chip.
func (b *CardBackend) Layout() Layout {
	return Layout{
		Chips:       b.geo.Buses * b.geo.ChipsPerBus,
		SegsPerChip: b.geo.BlocksPerChip,
		PagesPerSeg: b.geo.PagesPerBlock,
		PageSize:    b.geo.PageSize,
		Lanes:       1,
	}
}

// nandAddr converts a linear ppn to the card address.
func (b *CardBackend) nandAddr(ppn int) nand.Addr {
	p := ppn % b.geo.PagesPerBlock
	q := ppn / b.geo.PagesPerBlock
	blk := q % b.geo.BlocksPerChip
	q /= b.geo.BlocksPerChip
	chip := q % b.geo.ChipsPerBus
	bus := q / b.geo.ChipsPerBus
	return nand.Addr{Bus: bus, Chip: chip, Block: blk, Page: p}
}

// Addr resolves a ppn to its cluster-wide location.
func (b *CardBackend) Addr(ppn int) core.PageAddr {
	return core.PageAddr{Node: b.Node, Card: b.Card, Addr: b.nandAddr(ppn)}
}

// ReadPage reads one page (classes ignored: single FIFO interface).
func (b *CardBackend) ReadPage(ppn int, _ sched.Class, _ bool, cb func([]byte, error)) {
	b.iface.ReadPhysical(b.nandAddr(ppn), cb)
}

// WritePage programs one page.
func (b *CardBackend) WritePage(ppn int, _ sched.Class, _ bool, data []byte, cb func(error)) {
	b.iface.WritePhysical(b.nandAddr(ppn), data, cb)
}

// EraseSeg erases one segment's block.
func (b *CardBackend) EraseSeg(seg int, cb func(error)) {
	a := b.nandAddr(seg * b.geo.PagesPerBlock)
	a.Page = 0
	b.iface.Erase(a, cb)
}
