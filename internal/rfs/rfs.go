// Package rfs is the flash-aware file system of the BlueDBM software
// stack (paper §4), modelled on RFS: instead of stacking a disk file
// system on an FTL's fake block device, the file system performs the
// FTL's functions itself — logical-to-physical mapping, log-structured
// allocation, and garbage collection — achieving better cleaning
// efficiency at far lower memory cost.
//
// Its defining feature for BlueDBM is the physical-address query
// (Figure 8, step 1): applications ask for the physical locations of a
// file's pages and stream them to in-store processors, which then read
// flash directly, bypassing the host entirely.
//
// The FS core is generic over a Backend: the same inode, frontier,
// backref and cleaning machinery runs per-card over a flashserver
// interface (CardBackend — the original deployment) or cluster-wide,
// striping the log over every chip of every card of every node with
// all I/O admitted through the request scheduler at the caller's QoS
// class and segment cleaning on the Background class (ClusterBackend
// — the paper's Figure 8 at appliance scale).
//
// Cleaning concurrency rules (all in virtual time, single-threaded):
//   - Reads resolve their mapping at issue time and never wait for the
//     cleaner: relocation only copies, so a racing read still finds
//     its data at the old physical page. The one destructive step —
//     the victim erase — waits until in-flight reads against the
//     victim drain, and after relocation no mapping points into the
//     victim, so no new read can resolve there.
//   - Writes proceed during an active clean while the free pool stays
//     above a reserve (their lane frontiers are disjoint from the
//     sealed victim); below it they queue in pendingOps and drain when
//     the clean finishes, so they can never starve the relocation
//     destination. Remove is metadata-only and lands immediately, so
//     every relocation re-validates its backref before installing the
//     moved copy — a page invalidated mid-move is dropped, never
//     resurrected.
//   - A clean pass that cannot allocate relocation space fails the
//     pass and marks the FS stalled: further allocations fail
//     deterministically with ErrNoSpace (instead of re-triggering the
//     same doomed pass) until an invalidation changes the economics.
package rfs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/flashserver"
	"repro/internal/nand"
	"repro/internal/sched"
)

// File system errors.
var (
	ErrExists    = errors.New("rfs: file already exists")
	ErrNotFound  = errors.New("rfs: file not found")
	ErrDataSize  = errors.New("rfs: data must be exactly one page")
	ErrNoSpace   = errors.New("rfs: file system full")
	ErrBadOffset = errors.New("rfs: page offset out of range")
	ErrSpansCard = errors.New("rfs: file spans multiple cards; ATU export needs a per-card file")
)

// Config tunes the file system.
type Config struct {
	// CleanLowWater starts segment cleaning when the free-segment pool
	// drops this low. Cluster deployments want it scaled with the chip
	// count (a handful of free segments across hundreds of chips means
	// the log is effectively full).
	CleanLowWater int
	// StripeExtent is how many consecutive pages a lane writes to one
	// chip before rotating to the next (default 1: pure page-granular
	// round-robin). Page-granular striping maximizes write parallelism
	// but scatters each segment's pages across ~chips*PagesPerSeg
	// writes of arrival time, so temporally-adjacent data (which dies
	// together) never shares a segment and greedy cleaning finds only
	// uniformly-decayed victims. A small extent restores the age
	// clustering log-structured cleaning depends on, at a modest cost
	// in how many chips a short write burst spreads over.
	StripeExtent int
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config {
	return Config{CleanLowWater: 2}
}

// Hooks observe the cleaner's lifecycle, mirroring the FTL's GC hooks
// so a scheduler-backed deployment can feed cleaning urgency into the
// Background token budget.
type Hooks struct {
	CleanStart func()
	CleanEnd   func()
	// Urgency reports how badly cleaning needs to run, 0..1, whenever
	// the free pool changes.
	Urgency func(u float64)
}

type fileRef struct {
	ino  int
	page int
}

type inode struct {
	name   string
	handle flashserver.FileHandle
	pages  []int // page index -> ppn, -1 for holes
	live   bool
}

type segInfo struct {
	valid    int
	written  int
	bad      bool
	isActive bool
}

// cleanState tracks one in-progress segment clean.
type cleanState struct {
	victim      int
	next        int  // next page offset of the victim to scan
	busy        bool // an async relocation step is in flight
	pumping     bool // re-entrancy guard for the iterative pump
	relocated   bool // all pages scanned; erase is next
	eraseIssued bool
	aborted     bool // no room to relocate: the pass failed
}

// FS is a flash file system over a Backend.
type FS struct {
	b     Backend
	lay   Layout
	cfg   Config
	hooks Hooks

	lanes     int // app lanes + 1 cleaning lane
	cleanLane int

	inodes   []*inode
	byName   map[string]int
	backrefs map[int]fileRef // ppn -> owner

	segs []segInfo
	// Allocation stripes across chips (one log frontier per chip and
	// lane) so file data spreads over every bus and chip — "exposing
	// all degrees of parallelism of the device" (paper §3.1.1) — and,
	// on a cluster backend, over every card and node.
	freePool [][]int // per chip
	freeSegs int     // running total across freePool (every write checks it)
	active   [][]int // [lane][chip], -1 = none
	cursor   []int   // per-lane round-robin chip cursor

	cleaning   bool
	stalled    bool // last clean made no progress; only invalidation can help
	cleanst    *cleanState
	pendingOps []func()

	// readsInflight counts app reads in flight per segment; the victim
	// erase waits for its count to drain.
	readsInflight map[int]int

	// stats
	PagesWritten int64
	PagesRead    int64
	CleanMoves   int64
	SegsCleaned  int64

	// fault stats
	CleanReadFaults int64 // cleaner reads that failed (uncorrectable or dead flash)
	LostPages       int64 // file pages dropped because their data was unreadable
}

// New builds a file system on a single card's flashserver interface
// with the card geometry — the per-card deployment.
func New(iface *flashserver.Iface, geo nand.Geometry, cfg Config) (*FS, error) {
	b, err := NewCardBackend(iface, geo)
	if err != nil {
		return nil, err
	}
	return NewWithBackend(b, cfg)
}

// NewWithBackend builds a file system over an arbitrary Backend.
func NewWithBackend(b Backend, cfg Config) (*FS, error) {
	lay := b.Layout()
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if cfg.CleanLowWater < 1 {
		cfg.CleanLowWater = 1
	}
	lanes := lay.Lanes + 1 // one extra frontier lane for cleaning
	fs := &FS{
		b:             b,
		lay:           lay,
		cfg:           cfg,
		lanes:         lanes,
		cleanLane:     lay.Lanes,
		byName:        make(map[string]int),
		backrefs:      make(map[int]fileRef),
		segs:          make([]segInfo, lay.TotalSegs()),
		freePool:      make([][]int, lay.Chips),
		active:        make([][]int, lanes),
		cursor:        make([]int, lanes),
		readsInflight: make(map[int]int),
	}
	for lane := 0; lane < lanes; lane++ {
		fs.active[lane] = make([]int, lay.Chips)
		for ch := range fs.active[lane] {
			fs.active[lane][ch] = -1
		}
	}
	for ch := 0; ch < lay.Chips; ch++ {
		for s := 0; s < lay.SegsPerChip; s++ {
			fs.freePool[ch] = append(fs.freePool[ch], ch*lay.SegsPerChip+s)
		}
	}
	fs.freeSegs = lay.TotalSegs()
	return fs, nil
}

// SetHooks installs cleaning lifecycle hooks (see Hooks).
func (fs *FS) SetHooks(h Hooks) { fs.hooks = h }

// Backend returns the storage the file system runs over.
func (fs *FS) Backend() Backend { return fs.b }

// chipOf returns the chip index owning a segment.
func (fs *FS) chipOf(seg int) int { return seg / fs.lay.SegsPerChip }

// totalFree returns the free-segment count across all chips (a
// running counter: the hot write path checks it up to three times per
// page, so it must not scan the per-chip pools).
func (fs *FS) totalFree() int { return fs.freeSegs }

// PageSize returns the file system's IO granularity.
func (fs *FS) PageSize() int { return fs.lay.PageSize }

func (fs *FS) segOf(ppn int) int { return ppn / fs.lay.PagesPerSeg }

// laneOf maps an op's QoS class onto a frontier lane, so writes
// admitted through independently scheduled channels never share a
// NAND block.
func (fs *FS) laneOf(class sched.Class) int {
	return int(class) % fs.lay.Lanes
}

// Urgency reports how badly cleaning needs to run, from 0 (free pool
// at or above the low-water mark) to 1 (pool dry, writes about to
// stall) — the deficit below the trigger point, mirroring
// ftl.Urgency, so the scheduler's Background budget can scale.
func (fs *FS) Urgency() float64 {
	low := fs.cfg.CleanLowWater
	if low < 1 {
		low = 1
	}
	u := 1 - float64(fs.totalFree())/float64(low)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

func (fs *FS) notifyUrgency() {
	if fs.hooks.Urgency != nil {
		fs.hooks.Urgency(fs.Urgency())
	}
}

// File is an open file handle. It carries the QoS class its I/O is
// admitted at on scheduler-backed backends (At derives handles at
// other classes); per-card backends ignore the class.
type File struct {
	fs    *FS
	ino   int
	class sched.Class
}

// Create makes a new empty file (I/O at the Batch class; see At).
func (fs *FS) Create(name string) (*File, error) {
	if _, dup := fs.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	ino := len(fs.inodes)
	fs.inodes = append(fs.inodes, &inode{
		name:   name,
		handle: flashserver.FileHandle(ino + 1),
		live:   true,
	})
	fs.byName[name] = ino
	return &File{fs: fs, ino: ino, class: sched.Batch}, nil
}

// Open returns an existing file (I/O at the Batch class; see At).
func (fs *FS) Open(name string) (*File, error) {
	ino, ok := fs.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &File{fs: fs, ino: ino, class: sched.Batch}, nil
}

// Remove deletes a file, invalidating its pages for the cleaner. It
// is a host-side metadata update and lands immediately, even while a
// clean is relocating the file's pages (the cleaner re-validates
// every backref before installing a moved copy).
func (fs *FS) Remove(name string) error {
	ino, ok := fs.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	nd := fs.inodes[ino]
	for _, ppn := range nd.pages {
		if ppn >= 0 {
			fs.invalidate(ppn)
		}
	}
	nd.pages = nil
	nd.live = false
	delete(fs.byName, name)
	return nil
}

// List returns all file names, sorted.
func (fs *FS) List() []string {
	var out []string
	for name := range fs.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FreeSegments returns the free pool size across all chips.
func (fs *FS) FreeSegments() int { return fs.totalFree() }

// LiveMappings returns the number of page-mapping entries the file
// system currently holds — only live data is mapped, which is the
// memory-footprint half of the RFS argument (paper §4): an FTL maps
// the whole logical space whether or not data is live.
func (fs *FS) LiveMappings() int { return len(fs.backrefs) }

// WriteAmplification returns total flash programs (host appends plus
// cleaning relocations) per host page written.
func (fs *FS) WriteAmplification() float64 {
	if fs.PagesWritten == 0 {
		return 0
	}
	return float64(fs.PagesWritten+fs.CleanMoves) / float64(fs.PagesWritten)
}

// At returns a handle on the same file issuing I/O at the given QoS
// class. Classes at or above Accel are not tenant classes and clamp
// to Batch. Per-card backends ignore the class entirely.
func (f *File) At(class sched.Class) *File {
	if class >= sched.Accel {
		class = sched.Batch
	}
	return &File{fs: f.fs, ino: f.ino, class: class}
}

// Class returns the QoS class this handle issues I/O at.
func (f *File) Class() sched.Class { return f.class }

// Name returns the file's name.
func (f *File) Name() string { return f.fs.inodes[f.ino].name }

// Handle returns the file's stable handle for ATU export.
func (f *File) Handle() flashserver.FileHandle { return f.fs.inodes[f.ino].handle }

// Pages returns the file's length in pages.
func (f *File) Pages() int { return len(f.fs.inodes[f.ino].pages) }

// PageSize returns the file system's IO granularity.
func (f *File) PageSize() int { return f.fs.lay.PageSize }

// PhysicalAddrs returns the cluster-wide physical flash location of
// every page — the query applications use to drive in-store
// processors directly (paper Figure 8, step 1). On a cluster backend
// the addresses span every node of the appliance; the distributed ISP
// layer partitions them by owning node and fans engines out over the
// fabric. Every address is a snapshot: an overwrite, Remove, or
// cleaning relocation of the page invalidates it, so engines scan
// read-stable data or re-query after mutation.
func (f *File) PhysicalAddrs() ([]core.PageAddr, error) {
	nd := f.fs.inodes[f.ino]
	out := make([]core.PageAddr, 0, len(nd.pages))
	for i, ppn := range nd.pages {
		if ppn < 0 {
			return nil, fmt.Errorf("rfs: file %q has a hole at page %d", nd.name, i)
		}
		out = append(out, f.fs.b.Addr(ppn))
	}
	return out, nil
}

// ExportATU loads the file's physical layout into a Flash Server ATU
// so in-store processors can address it by (handle, offset). An ATU
// belongs to one card's flash server, so the file must live entirely
// on one card (always true on a CardBackend); cluster files that
// stripe across cards use PhysicalAddrs with the distributed ISP
// layer instead.
func (f *File) ExportATU(atu *flashserver.ATU) error {
	addrs, err := f.PhysicalAddrs()
	if err != nil {
		return err
	}
	nas := make([]nand.Addr, len(addrs))
	for i, a := range addrs {
		if a.Node != addrs[0].Node || a.Card != addrs[0].Card {
			return fmt.Errorf("%w: %q touches n%d.card%d and n%d.card%d",
				ErrSpansCard, f.Name(), addrs[0].Node, addrs[0].Card, a.Node, a.Card)
		}
		nas[i] = a.Addr
	}
	atu.Load(f.Handle(), nas)
	return nil
}

// AppendPage adds one page to the end of the file.
func (f *File) AppendPage(data []byte, cb func(err error)) {
	nd := f.fs.inodes[f.ino]
	idx := len(nd.pages)
	nd.pages = append(nd.pages, -1)
	f.writePage(idx, data, cb)
}

// WritePage overwrites page idx (which must exist or be the append
// position).
func (f *File) WritePage(idx int, data []byte, cb func(err error)) {
	nd := f.fs.inodes[f.ino]
	if idx < 0 || idx > len(nd.pages) {
		cb(fmt.Errorf("%w: %d of %d", ErrBadOffset, idx, len(nd.pages)))
		return
	}
	if idx == len(nd.pages) {
		f.AppendPage(data, cb)
		return
	}
	f.writePage(idx, data, cb)
}

func (f *File) writePage(idx int, data []byte, cb func(err error)) {
	if len(data) != f.fs.lay.PageSize {
		cb(fmt.Errorf("%w: got %d want %d", ErrDataSize, len(data), f.fs.lay.PageSize))
		return
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	ino, class := f.ino, f.class
	f.fs.enqueue(func() { f.fs.logWrite(ino, idx, class, buf, cb) })
}

// ReadPage fetches page idx. Reads resolve the mapping at issue time
// and never wait for the cleaner: relocation only copies, and the
// victim erase waits for in-flight reads against the victim to drain,
// so a read can never land on a page erased under it.
func (f *File) ReadPage(idx int, cb func(data []byte, err error)) {
	fs := f.fs
	nd := fs.inodes[f.ino]
	if idx < 0 || idx >= len(nd.pages) || nd.pages[idx] < 0 {
		cb(nil, fmt.Errorf("%w: %d of %d", ErrBadOffset, idx, len(nd.pages)))
		return
	}
	ppn := nd.pages[idx]
	seg := fs.segOf(ppn)
	fs.PagesRead++
	fs.readsInflight[seg]++
	fs.b.ReadPage(ppn, f.class, false, func(data []byte, err error) {
		if fs.readsInflight[seg]--; fs.readsInflight[seg] == 0 {
			delete(fs.readsInflight, seg)
		}
		fs.maybeErase()
		cb(data, err)
	})
}

// cleanReserveSegs is the free-segment floor below which writes stall
// behind an active clean: the last segments are reserved as the
// relocation destination, because a write racing the cleaner for them
// aborts the pass and wedges the log (the same reserve discipline as
// the FTL's gcReserveBlocks).
const cleanReserveSegs = 1

// enqueue runs a write now, or behind the in-progress clean when the
// free-segment reserve demands it. Writes that proceed during a clean
// go to their own lane's frontier and cannot disturb the sealed
// victim — and every relocation re-validates its backref before
// installing the copy, so a concurrent overwrite of a victim page is
// dropped, not resurrected. Blocking every write for the whole clean
// (the old behaviour) would serialize the appliance's entire write
// stream behind Background-class relocation.
func (fs *FS) enqueue(op func()) {
	if fs.cleaning && fs.totalFree() <= cleanReserveSegs {
		fs.pendingOps = append(fs.pendingOps, op)
		return
	}
	op()
}

// logWrite appends a page to the log and maps it to (ino, idx).
func (fs *FS) logWrite(ino, idx int, class sched.Class, data []byte, cb func(err error)) {
	fs.allocAndProgram(class, data, func(ppn int, err error) {
		if err != nil {
			cb(err)
			return
		}
		nd := fs.inodes[ino]
		if !nd.live {
			// File removed while the write was in flight: the new page
			// is garbage — no mapping is registered, so the cleaner sees
			// it as dead.
			cb(nil)
			return
		}
		if old := nd.pages[idx]; old >= 0 {
			fs.invalidate(old)
		}
		nd.pages[idx] = ppn
		fs.segs[fs.segOf(ppn)].valid++
		fs.backrefs[ppn] = fileRef{ino: ino, page: idx}
		fs.PagesWritten++
		cb(nil)
	})
}

// invalidate marks a physical page dead. A stalled FS aborted its
// last clean for lack of relocation room; dropping a valid page
// shrinks some victim's relocation demand, so cleaning is worth
// retrying — if it still cannot fit, it re-aborts and re-stalls, so
// this cannot loop.
func (fs *FS) invalidate(ppn int) {
	if _, ok := fs.backrefs[ppn]; ok {
		fs.segs[fs.segOf(ppn)].valid--
		delete(fs.backrefs, ppn)
		fs.stalled = false
	}
}

// allocAndProgram finds the next log position on the class's lane and
// programs it, retrying around bad blocks and starting the cleaner
// when space runs low.
func (fs *FS) allocAndProgram(class sched.Class, data []byte, cb func(ppn int, err error)) {
	ppn, err := fs.allocPage(fs.laneOf(class), func() { fs.allocAndProgram(class, data, cb) })
	if err != nil {
		cb(-1, err)
		return
	}
	if ppn < 0 {
		return // cleaner started; op requeued
	}
	fs.b.WritePage(ppn, class, false, data, func(err error) {
		if err == nil {
			cb(ppn, nil)
			return
		}
		if errors.Is(err, nand.ErrBadBlock) {
			fs.markBad(fs.segOf(ppn))
			fs.allocAndProgram(class, data, cb)
			return
		}
		cb(-1, err)
	})
}

// markBad retires a segment, clearing any frontier (on any lane) that
// pointed at it so no stale active state survives.
func (fs *FS) markBad(seg int) {
	s := &fs.segs[seg]
	s.bad = true
	s.isActive = false
	ch := fs.chipOf(seg)
	for lane := range fs.active {
		if fs.active[lane][ch] == seg {
			fs.active[lane][ch] = -1
		}
	}
}

// allocPage returns the next frontier ppn for the lane — rotating
// across chip frontiers for parallelism — or -1 after starting the
// cleaner (the retry closure is requeued behind it). A stalled FS
// (the last clean found no room to relocate) must not re-trigger the
// same doomed pass: it keeps allocating from what remains and fails
// with ErrNoSpace when that runs dry.
func (fs *FS) allocPage(lane int, retry func()) (int, error) {
	if fs.totalFree() <= fs.cfg.CleanLowWater && !fs.cleaning && !fs.stalled && fs.victim() >= 0 {
		if retry != nil {
			fs.pendingOps = append(fs.pendingOps, retry)
		}
		fs.startClean()
		return -1, nil
	}
	// Writes that got past the enqueue reserve gate before the pool
	// dropped must neither consume the reserve the clean's relocation
	// needs nor see a transient "file system full": queue them behind
	// the clean. ErrNoSpace is then only returned with no clean in
	// flight — deterministically.
	if fs.cleaning && fs.totalFree() <= cleanReserveSegs && retry != nil {
		fs.pendingOps = append(fs.pendingOps, retry)
		return -1, nil
	}
	return fs.allocRoundRobin(lane)
}

// allocRoundRobin takes the next page from the lane's current chip,
// rotating chips every StripeExtent allocations (see Config); it
// never triggers the cleaner. The cursor counts allocation slots, so
// chip = (cursor/extent) mod chips; an exhausted chip jumps the
// cursor to the next chip boundary.
func (fs *FS) allocRoundRobin(lane int) (int, error) {
	chips := fs.lay.Chips
	ext := fs.cfg.StripeExtent
	if ext < 1 {
		ext = 1
	}
	for try := 0; try < chips; try++ {
		ch := (fs.cursor[lane] / ext) % chips
		ppn, ok := fs.allocOnChip(lane, ch)
		if ok {
			fs.cursor[lane]++
			return ppn, nil
		}
		fs.cursor[lane] = (fs.cursor[lane]/ext + 1) * ext
	}
	return 0, ErrNoSpace
}

// allocOnChip advances one chip's lane frontier, opening a fresh
// segment from the chip's pool when needed.
func (fs *FS) allocOnChip(lane, ch int) (int, bool) {
	for {
		if fs.active[lane][ch] >= 0 {
			seg := fs.active[lane][ch]
			s := &fs.segs[seg]
			if s.bad {
				fs.active[lane][ch] = -1
				continue
			}
			if s.written < fs.lay.PagesPerSeg {
				ppn := seg*fs.lay.PagesPerSeg + s.written
				s.written++
				return ppn, true
			}
			s.isActive = false
			fs.active[lane][ch] = -1
		}
		if len(fs.freePool[ch]) == 0 {
			return 0, false
		}
		seg := fs.freePool[ch][0]
		fs.freePool[ch] = fs.freePool[ch][1:]
		fs.freeSegs--
		fs.active[lane][ch] = seg
		s := &fs.segs[seg]
		s.isActive = true
		s.written = 0
		s.valid = 0
		fs.notifyUrgency()
	}
}

// victim picks the sealed segment with the fewest valid pages, or -1.
func (fs *FS) victim() int {
	best := -1
	for s := range fs.segs {
		si := &fs.segs[s]
		if si.bad || si.isActive || si.written < fs.lay.PagesPerSeg {
			continue
		}
		if si.valid == fs.lay.PagesPerSeg {
			continue
		}
		if best < 0 || si.valid < fs.segs[best].valid {
			best = s
		}
	}
	return best
}

func (fs *FS) startClean() {
	v := fs.victim()
	if v < 0 {
		return
	}
	fs.cleaning = true
	fs.cleanst = &cleanState{victim: v}
	if fs.hooks.CleanStart != nil {
		fs.hooks.CleanStart()
	}
	fs.notifyUrgency()
	fs.pumpClean()
}

// pumpClean is the cleaner's iterative driver: it scans the victim's
// pages in a loop (no recursion, so a segment's page count never
// costs stack), parking only while an async relocation step is in
// flight. Completion callbacks clear busy and re-enter; the pumping
// guard makes synchronous completions unwind into this loop instead
// of stacking one frame per page.
func (fs *FS) pumpClean() {
	st := fs.cleanst
	if st == nil || st.pumping {
		return
	}
	st.pumping = true
	for !st.busy && !st.aborted && !st.relocated {
		if st.next >= fs.lay.PagesPerSeg {
			st.relocated = true
			fs.maybeErase()
			break
		}
		ppn := st.victim*fs.lay.PagesPerSeg + st.next
		st.next++
		ref, ok := fs.backrefs[ppn]
		if !ok {
			continue // dead page: nothing to move
		}
		st.busy = true
		fs.moveOne(st, ppn, ref)
	}
	st.pumping = false
}

// moveOne relocates one valid victim page: read it, allocate a
// destination on the cleaning lane, program the copy, and re-point
// the mapping — re-validating the backref at every completion,
// because a Remove can land while the copy is in flight and the moved
// page must then be dropped, not resurrected over dead state.
func (fs *FS) moveOne(st *cleanState, ppn int, ref fileRef) {
	fs.b.ReadPage(ppn, sched.Background, true, func(data []byte, err error) {
		if err != nil {
			// Unreadable during cleaning: drop the mapping — but only if
			// it still points here (the file may have been removed while
			// the read was in flight) — and count the loss so it is
			// visible to scrubbing and repair layers instead of silent.
			fs.CleanReadFaults++
			if cur, ok := fs.backrefs[ppn]; ok && cur == ref {
				fs.invalidate(ppn)
				if nd := fs.inodes[ref.ino]; nd.live && ref.page < len(nd.pages) && nd.pages[ref.page] == ppn {
					nd.pages[ref.page] = -1
					fs.LostPages++
				}
			}
			st.busy = false
			fs.pumpClean()
			return
		}
		if cur, ok := fs.backrefs[ppn]; !ok || cur != ref {
			// Invalidated while the read was in flight: dead now.
			st.busy = false
			fs.pumpClean()
			return
		}
		dst, aerr := fs.cleanAlloc()
		if aerr != nil {
			// No room to relocate: the pass failed and retrying it
			// cannot help (only an invalidation changes the economics).
			// Mark the FS stalled so queued writes fail with ErrNoSpace
			// instead of re-triggering this pass forever.
			st.aborted = true
			st.busy = false
			fs.stalled = true
			fs.finishClean()
			return
		}
		fs.b.WritePage(dst, sched.Background, true, data, func(perr error) {
			if perr != nil {
				st.aborted = true
				st.busy = false
				if errors.Is(perr, nand.ErrBadBlock) {
					fs.markBad(fs.segOf(dst))
				}
				fs.finishClean()
				return
			}
			if cur, ok := fs.backrefs[ppn]; ok && cur == ref {
				fs.CleanMoves++
				fs.invalidate(ppn)
				nd := fs.inodes[ref.ino]
				nd.pages[ref.page] = dst
				fs.segs[fs.segOf(dst)].valid++
				fs.backrefs[dst] = ref
			}
			// else: removed mid-move — the copy at dst stays unmapped
			// garbage for a later clean; the original was already
			// invalidated by Remove, so nothing to double-count.
			st.busy = false
			fs.pumpClean()
		})
	})
}

// cleanAlloc allocates a relocation destination on the cleaning lane
// without recursing into cleaning.
func (fs *FS) cleanAlloc() (int, error) {
	return fs.allocRoundRobin(fs.cleanLane)
}

// maybeErase issues the victim erase once relocation is complete and
// no app read is in flight against the victim. After relocation no
// mapping points into the victim, so no new read can resolve there —
// the count only drains.
func (fs *FS) maybeErase() {
	st := fs.cleanst
	if st == nil || !st.relocated || st.eraseIssued {
		return
	}
	if fs.readsInflight[st.victim] > 0 {
		return
	}
	st.eraseIssued = true
	victim := st.victim
	fs.b.EraseSeg(victim, func(err error) {
		if err != nil {
			fs.markBad(victim)
		} else {
			s := &fs.segs[victim]
			s.valid = 0
			s.written = 0
			fs.SegsCleaned++
			fs.stalled = false
			ch := fs.chipOf(victim)
			fs.freePool[ch] = append(fs.freePool[ch], victim)
			fs.freeSegs++
			fs.notifyUrgency()
		}
		fs.finishClean()
	})
}

func (fs *FS) finishClean() {
	fs.cleaning = false
	fs.cleanst = nil
	if fs.hooks.CleanEnd != nil {
		fs.hooks.CleanEnd()
	}
	fs.notifyUrgency()
	ops := fs.pendingOps
	fs.pendingOps = nil
	for _, op := range ops {
		if fs.cleaning {
			fs.pendingOps = append(fs.pendingOps, op)
			continue
		}
		op()
	}
}

// CheckInvariants verifies the mapping bookkeeping: every backref
// points at a live inode page that maps back to it, every mapped page
// has its backref, and per-segment valid counts match the backref
// census. Tests call it after adversarial interleavings.
func (fs *FS) CheckInvariants() error {
	valid := make([]int, len(fs.segs))
	// Walk backrefs in sorted ppn order so that, with several
	// violations present, the same one is reported on every run.
	ppns := make([]int, 0, len(fs.backrefs))
	for ppn := range fs.backrefs {
		ppns = append(ppns, ppn)
	}
	sort.Ints(ppns)
	for _, ppn := range ppns {
		ref := fs.backrefs[ppn]
		valid[fs.segOf(ppn)]++
		if ref.ino < 0 || ref.ino >= len(fs.inodes) {
			return fmt.Errorf("rfs: backref %d -> bad inode %d", ppn, ref.ino)
		}
		nd := fs.inodes[ref.ino]
		if !nd.live {
			return fmt.Errorf("rfs: backref %d -> dead inode %d", ppn, ref.ino)
		}
		if ref.page >= len(nd.pages) || nd.pages[ref.page] != ppn {
			return fmt.Errorf("rfs: backref %d -> (%d,%d) but mapping disagrees", ppn, ref.ino, ref.page)
		}
	}
	for ino, nd := range fs.inodes {
		if !nd.live {
			continue
		}
		for pg, ppn := range nd.pages {
			if ppn < 0 {
				continue
			}
			if ref, ok := fs.backrefs[ppn]; !ok || ref != (fileRef{ino: ino, page: pg}) {
				return fmt.Errorf("rfs: mapping (%d,%d)->%d missing backref", ino, pg, ppn)
			}
		}
	}
	for s := range fs.segs {
		if fs.segs[s].valid != valid[s] {
			return fmt.Errorf("rfs: seg %d valid=%d but %d live backrefs", s, fs.segs[s].valid, valid[s])
		}
	}
	pool := 0
	for _, p := range fs.freePool {
		pool += len(p)
	}
	if pool != fs.freeSegs {
		return fmt.Errorf("rfs: free counter %d but pools hold %d", fs.freeSegs, pool)
	}
	return nil
}
