// Package rfs is the flash-aware file system of the BlueDBM software
// stack (paper §4), modelled on RFS: instead of stacking a disk file
// system on an FTL's fake block device, the file system performs the
// FTL's functions itself — logical-to-physical mapping, log-structured
// allocation, and garbage collection — achieving better cleaning
// efficiency at far lower memory cost.
//
// Its defining feature for BlueDBM is the physical-address query
// (Figure 8, step 1): applications ask for the physical locations of a
// file's pages and stream them to in-store processors, which then read
// flash directly, bypassing the host entirely.
package rfs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/flashserver"
	"repro/internal/nand"
)

// File system errors.
var (
	ErrExists    = errors.New("rfs: file already exists")
	ErrNotFound  = errors.New("rfs: file not found")
	ErrDataSize  = errors.New("rfs: data must be exactly one page")
	ErrNoSpace   = errors.New("rfs: file system full")
	ErrBadOffset = errors.New("rfs: page offset out of range")
)

// Config tunes the file system.
type Config struct {
	// CleanLowWater starts segment cleaning when the free-segment pool
	// drops this low.
	CleanLowWater int
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config {
	return Config{CleanLowWater: 2}
}

type fileRef struct {
	ino  int
	page int
}

type inode struct {
	name   string
	handle flashserver.FileHandle
	pages  []int // page index -> ppn, -1 for holes
	live   bool
}

type segInfo struct {
	valid    int
	written  int
	bad      bool
	isActive bool
}

// FS is one node's flash file system over one card.
type FS struct {
	iface *flashserver.Iface
	geo   nand.Geometry
	cfg   Config

	inodes   []*inode
	byName   map[string]int
	backrefs map[int]fileRef // ppn -> owner

	segs []segInfo
	// Allocation stripes across chips (one log frontier per chip) so
	// file data spreads over every bus and chip — "exposing all degrees
	// of parallelism of the device" (paper §3.1.1).
	freePool [][]int // per chip
	active   []int   // per chip, -1 = none
	cursor   int     // round-robin chip cursor

	cleaning   bool
	pendingOps []func()

	// stats
	PagesWritten int64
	PagesRead    int64
	CleanMoves   int64
	SegsCleaned  int64
}

// New builds a file system on iface with the card geometry.
func New(iface *flashserver.Iface, geo nand.Geometry, cfg Config) (*FS, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.CleanLowWater < 1 {
		cfg.CleanLowWater = 1
	}
	chips := geo.Buses * geo.ChipsPerBus
	fs := &FS{
		iface:    iface,
		geo:      geo,
		cfg:      cfg,
		byName:   make(map[string]int),
		backrefs: make(map[int]fileRef),
		segs:     make([]segInfo, chips*geo.BlocksPerChip),
		freePool: make([][]int, chips),
		active:   make([]int, chips),
	}
	for ch := 0; ch < chips; ch++ {
		fs.active[ch] = -1
		for b := 0; b < geo.BlocksPerChip; b++ {
			fs.freePool[ch] = append(fs.freePool[ch], ch*geo.BlocksPerChip+b)
		}
	}
	return fs, nil
}

// chipOf returns the chip index owning a segment.
func (fs *FS) chipOf(seg int) int { return seg / fs.geo.BlocksPerChip }

// totalFree counts free segments across all chips.
func (fs *FS) totalFree() int {
	n := 0
	for _, pool := range fs.freePool {
		n += len(pool)
	}
	return n
}

// PageSize returns the file system's IO granularity.
func (fs *FS) PageSize() int { return fs.geo.PageSize }

// addrOf converts a linear ppn to a card address.
func (fs *FS) addrOf(ppn int) nand.Addr {
	p := ppn % fs.geo.PagesPerBlock
	b := ppn / fs.geo.PagesPerBlock
	blk := b % fs.geo.BlocksPerChip
	b /= fs.geo.BlocksPerChip
	chip := b % fs.geo.ChipsPerBus
	bus := b / fs.geo.ChipsPerBus
	return nand.Addr{Bus: bus, Chip: chip, Block: blk, Page: p}
}

func (fs *FS) segOf(ppn int) int { return ppn / fs.geo.PagesPerBlock }

// File is an open file.
type File struct {
	fs  *FS
	ino int
}

// Create makes a new empty file.
func (fs *FS) Create(name string) (*File, error) {
	if _, dup := fs.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	ino := len(fs.inodes)
	fs.inodes = append(fs.inodes, &inode{
		name:   name,
		handle: flashserver.FileHandle(ino + 1),
		live:   true,
	})
	fs.byName[name] = ino
	return &File{fs: fs, ino: ino}, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	ino, ok := fs.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &File{fs: fs, ino: ino}, nil
}

// Remove deletes a file, invalidating its pages for the cleaner.
func (fs *FS) Remove(name string) error {
	ino, ok := fs.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	nd := fs.inodes[ino]
	for _, ppn := range nd.pages {
		if ppn >= 0 {
			fs.invalidate(ppn)
		}
	}
	nd.pages = nil
	nd.live = false
	delete(fs.byName, name)
	return nil
}

// List returns all file names, sorted.
func (fs *FS) List() []string {
	var out []string
	for name := range fs.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FreeSegments returns the free pool size across all chips.
func (fs *FS) FreeSegments() int { return fs.totalFree() }

// Name returns the file's name.
func (f *File) Name() string { return f.fs.inodes[f.ino].name }

// Handle returns the file's stable handle for ATU export.
func (f *File) Handle() flashserver.FileHandle { return f.fs.inodes[f.ino].handle }

// Pages returns the file's length in pages.
func (f *File) Pages() int { return len(f.fs.inodes[f.ino].pages) }

// PhysicalAddrs returns the physical flash location of every page —
// the query applications use to drive in-store processors directly
// (paper Figure 8, step 1).
func (f *File) PhysicalAddrs() ([]nand.Addr, error) {
	nd := f.fs.inodes[f.ino]
	out := make([]nand.Addr, 0, len(nd.pages))
	for i, ppn := range nd.pages {
		if ppn < 0 {
			return nil, fmt.Errorf("rfs: file %q has a hole at page %d", nd.name, i)
		}
		out = append(out, f.fs.addrOf(ppn))
	}
	return out, nil
}

// ExportATU loads the file's physical layout into a Flash Server ATU
// so in-store processors can address it by (handle, offset).
func (f *File) ExportATU(atu *flashserver.ATU) error {
	addrs, err := f.PhysicalAddrs()
	if err != nil {
		return err
	}
	atu.Load(f.Handle(), addrs)
	return nil
}

// AppendPage adds one page to the end of the file.
func (f *File) AppendPage(data []byte, cb func(err error)) {
	nd := f.fs.inodes[f.ino]
	idx := len(nd.pages)
	nd.pages = append(nd.pages, -1)
	f.writePage(idx, data, cb)
}

// WritePage overwrites page idx (which must exist or be the append
// position).
func (f *File) WritePage(idx int, data []byte, cb func(err error)) {
	nd := f.fs.inodes[f.ino]
	if idx < 0 || idx > len(nd.pages) {
		cb(fmt.Errorf("%w: %d of %d", ErrBadOffset, idx, len(nd.pages)))
		return
	}
	if idx == len(nd.pages) {
		f.AppendPage(data, cb)
		return
	}
	f.writePage(idx, data, cb)
}

func (f *File) writePage(idx int, data []byte, cb func(err error)) {
	if len(data) != f.fs.geo.PageSize {
		cb(fmt.Errorf("%w: got %d want %d", ErrDataSize, len(data), f.fs.geo.PageSize))
		return
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	f.fs.enqueue(func() { f.fs.logWrite(f.ino, idx, buf, cb) })
}

// ReadPage fetches page idx.
func (f *File) ReadPage(idx int, cb func(data []byte, err error)) {
	nd := f.fs.inodes[f.ino]
	if idx < 0 || idx >= len(nd.pages) || nd.pages[idx] < 0 {
		cb(nil, fmt.Errorf("%w: %d of %d", ErrBadOffset, idx, len(nd.pages)))
		return
	}
	f.fs.PagesRead++
	f.fs.iface.ReadPhysical(f.fs.addrOf(nd.pages[idx]), cb)
}

// enqueue defers ops while the cleaner runs.
func (fs *FS) enqueue(op func()) {
	if fs.cleaning {
		fs.pendingOps = append(fs.pendingOps, op)
		return
	}
	op()
}

// logWrite appends a page to the log and maps it to (ino, idx).
func (fs *FS) logWrite(ino, idx int, data []byte, cb func(err error)) {
	fs.allocAndProgram(data, func(ppn int, err error) {
		if err != nil {
			cb(err)
			return
		}
		nd := fs.inodes[ino]
		if !nd.live {
			// File removed while the write was in flight: the new page
			// is immediately garbage.
			fs.segs[fs.segOf(ppn)].valid++
			fs.backrefs[ppn] = fileRef{ino: ino, page: idx}
			fs.invalidate(ppn)
			cb(nil)
			return
		}
		if old := nd.pages[idx]; old >= 0 {
			fs.invalidate(old)
		}
		nd.pages[idx] = ppn
		fs.segs[fs.segOf(ppn)].valid++
		fs.backrefs[ppn] = fileRef{ino: ino, page: idx}
		fs.PagesWritten++
		cb(nil)
	})
}

func (fs *FS) invalidate(ppn int) {
	if _, ok := fs.backrefs[ppn]; ok {
		fs.segs[fs.segOf(ppn)].valid--
		delete(fs.backrefs, ppn)
	}
}

// allocAndProgram finds the next log position and programs it,
// retrying around bad blocks and starting the cleaner when space runs
// low.
func (fs *FS) allocAndProgram(data []byte, cb func(ppn int, err error)) {
	ppn, err := fs.allocPage(func() { fs.allocAndProgram(data, cb) })
	if err != nil {
		cb(-1, err)
		return
	}
	if ppn < 0 {
		return // cleaner started; op requeued
	}
	fs.iface.WritePhysical(fs.addrOf(ppn), data, func(err error) {
		if err == nil {
			cb(ppn, nil)
			return
		}
		if errors.Is(err, nand.ErrBadBlock) {
			seg := fs.segOf(ppn)
			fs.segs[seg].bad = true
			if ch := fs.chipOf(seg); fs.active[ch] == seg {
				fs.active[ch] = -1
			}
			fs.allocAndProgram(data, cb)
			return
		}
		cb(-1, err)
	})
}

// allocPage returns the next frontier ppn — rotating across chip
// frontiers for parallelism — or -1 after starting the cleaner (the
// retry closure is requeued behind it).
func (fs *FS) allocPage(retry func()) (int, error) {
	if fs.totalFree() <= fs.cfg.CleanLowWater && !fs.cleaning && fs.victim() >= 0 {
		if retry != nil {
			fs.pendingOps = append(fs.pendingOps, retry)
		}
		fs.startClean()
		return -1, nil
	}
	return fs.allocRoundRobin()
}

// allocRoundRobin takes the next page from the next chip that has
// room, never triggering the cleaner.
func (fs *FS) allocRoundRobin() (int, error) {
	chips := len(fs.freePool)
	for try := 0; try < chips; try++ {
		ch := fs.cursor % chips
		fs.cursor++
		ppn, ok := fs.allocOnChip(ch)
		if ok {
			return ppn, nil
		}
	}
	return 0, ErrNoSpace
}

// allocOnChip advances one chip's frontier, opening a fresh segment
// from the chip's pool when needed.
func (fs *FS) allocOnChip(ch int) (int, bool) {
	for {
		if fs.active[ch] >= 0 {
			s := &fs.segs[fs.active[ch]]
			if s.bad {
				fs.active[ch] = -1
				continue
			}
			if s.written < fs.geo.PagesPerBlock {
				ppn := fs.active[ch]*fs.geo.PagesPerBlock + s.written
				s.written++
				return ppn, true
			}
			s.isActive = false
			fs.active[ch] = -1
		}
		if len(fs.freePool[ch]) == 0 {
			return 0, false
		}
		seg := fs.freePool[ch][0]
		fs.freePool[ch] = fs.freePool[ch][1:]
		fs.active[ch] = seg
		s := &fs.segs[seg]
		s.isActive = true
		s.written = 0
		s.valid = 0
	}
}

// victim picks the sealed segment with the fewest valid pages, or -1.
func (fs *FS) victim() int {
	best := -1
	for s := range fs.segs {
		si := &fs.segs[s]
		if si.bad || si.isActive || si.written < fs.geo.PagesPerBlock {
			continue
		}
		if si.valid == fs.geo.PagesPerBlock {
			continue
		}
		if best < 0 || si.valid < fs.segs[best].valid {
			best = s
		}
	}
	return best
}

func (fs *FS) startClean() {
	v := fs.victim()
	if v < 0 {
		fs.finishClean()
		return
	}
	fs.cleaning = true
	fs.moveNext(v, 0)
}

func (fs *FS) moveNext(victim, page int) {
	if page >= fs.geo.PagesPerBlock {
		fs.eraseSeg(victim)
		return
	}
	ppn := victim*fs.geo.PagesPerBlock + page
	ref, ok := fs.backrefs[ppn]
	if !ok {
		fs.moveNext(victim, page+1)
		return
	}
	fs.iface.ReadPhysical(fs.addrOf(ppn), func(data []byte, err error) {
		if err != nil {
			fs.invalidate(ppn)
			if nd := fs.inodes[ref.ino]; nd.live && ref.page < len(nd.pages) {
				nd.pages[ref.page] = -1
			}
			fs.moveNext(victim, page+1)
			return
		}
		dst, aerr := fs.cleanAlloc()
		if aerr != nil {
			fs.finishClean()
			return
		}
		fs.iface.WritePhysical(fs.addrOf(dst), data, func(perr error) {
			if perr != nil {
				fs.finishClean()
				return
			}
			fs.CleanMoves++
			fs.invalidate(ppn)
			nd := fs.inodes[ref.ino]
			if nd.live && ref.page < len(nd.pages) {
				nd.pages[ref.page] = dst
				fs.segs[fs.segOf(dst)].valid++
				fs.backrefs[dst] = ref
			}
			fs.moveNext(victim, page+1)
		})
	})
}

// cleanAlloc allocates without recursing into cleaning.
func (fs *FS) cleanAlloc() (int, error) {
	return fs.allocRoundRobin()
}

func (fs *FS) eraseSeg(victim int) {
	a := fs.addrOf(victim * fs.geo.PagesPerBlock)
	a.Page = 0
	fs.iface.Erase(a, func(err error) {
		s := &fs.segs[victim]
		if err != nil {
			s.bad = true
		} else {
			s.valid = 0
			s.written = 0
			fs.SegsCleaned++
			ch := fs.chipOf(victim)
			fs.freePool[ch] = append(fs.freePool[ch], victim)
		}
		fs.finishClean()
	})
}

func (fs *FS) finishClean() {
	fs.cleaning = false
	ops := fs.pendingOps
	fs.pendingOps = nil
	for _, op := range ops {
		if fs.cleaning {
			fs.pendingOps = append(fs.pendingOps, op)
			continue
		}
		op()
	}
}

// LiveMappings returns the number of page-mapping entries the file
// system currently holds — only live data is mapped, which is the
// memory-footprint half of the RFS argument (paper §4).
func (fs *FS) LiveMappings() int { return len(fs.backrefs) }
