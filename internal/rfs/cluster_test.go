package rfs

// Tests for the cluster backend: striping over every node/card/chip,
// cleaning traffic admitted on the scheduler's Background class
// without starving realtime streams, and physical-address queries
// agreeing with what device-side engines actually read.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// clusterParams shrinks flash so churn reaches cleaning quickly.
func clusterParams(nodes int) core.Params {
	p := core.DefaultParams(nodes)
	p.Geometry.ChipsPerBus = 2
	p.Geometry.BlocksPerChip = 4
	p.Geometry.PagesPerBlock = 8
	return p
}

func newClusterFS(t *testing.T, nodes, lowWater int) (*core.Cluster, *sched.Scheduler, *FS) {
	t.Helper()
	c, err := core.NewCluster(clusterParams(nodes))
	if err != nil {
		t.Fatal(err)
	}
	scfg := sched.DefaultConfig()
	scfg.MaxInflight = 16
	scfg.BatchSize = 16
	s, err := sched.New(c, scfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, _, err := NewClusterFS(c, s, ClusterConfig{}, Config{CleanLowWater: lowWater})
	if err != nil {
		t.Fatal(err)
	}
	return c, s, fs
}

// clusterAppend writes pages [0, n) of the file with `depth` appends
// in flight, page content deterministic in the index.
func clusterAppend(t *testing.T, c *core.Cluster, f *File, n, depth int, gen func(idx int, page []byte)) {
	t.Helper()
	ps := f.PageSize()
	var firstErr error
	next := 0
	var issue func()
	issue = func() {
		if next >= n {
			return
		}
		idx := next
		next++
		buf := make([]byte, ps)
		gen(idx, buf)
		f.AppendPage(buf, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("append %d: %w", idx, err)
			}
			issue()
		})
	}
	for i := 0; i < depth && i < n; i++ {
		issue()
	}
	c.Run()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
}

func idxPage(idx int, page []byte) {
	for i := range page {
		page[i] = byte(idx + i*7)
	}
}

// TestClusterStripingSpreadsAppends: one round of the FS's chip cursor
// must touch every chip of every card of every node exactly once —
// sequential file data exposes the whole appliance's parallelism.
func TestClusterStripingSpreadsAppends(t *testing.T) {
	c, _, fs := newClusterFS(t, 2, 4)
	lay := fs.Backend().Layout()
	f, err := fs.Create("stripe")
	if err != nil {
		t.Fatal(err)
	}
	clusterAppend(t, c, f, lay.Chips, 16, idxPage)
	addrs, err := f.PhysicalAddrs()
	if err != nil {
		t.Fatal(err)
	}
	type chipKey struct{ node, card, bus, chip int }
	chips := map[chipKey]bool{}
	nodes := map[int]bool{}
	cards := map[int]bool{}
	for _, a := range addrs {
		chips[chipKey{a.Node, a.Card, a.Addr.Bus, a.Addr.Chip}] = true
		nodes[a.Node] = true
		cards[a.Card] = true
	}
	if len(chips) != lay.Chips {
		t.Fatalf("%d appends touched %d distinct chips, want %d", lay.Chips, len(chips), lay.Chips)
	}
	if len(nodes) != 2 || len(cards) != c.Params.CardsPerNode {
		t.Fatalf("striping covered %d nodes, %d cards", len(nodes), len(cards))
	}
}

// TestClusterCleaningOnBackground: churn overwrites until the cleaner
// runs, with a realtime probe reading throughout. Cleaning traffic
// must be admitted on the Background class (visible in the scheduler's
// class accounting, sized at least as large as the relocation work),
// and the realtime stream must keep completing — cleaning never
// starves it.
func TestClusterCleaningOnBackground(t *testing.T) {
	c, s, fs := newClusterFS(t, 2, 16)
	lay := fs.Backend().Layout()
	f, err := fs.Create("churn")
	if err != nil {
		t.Fatal(err)
	}
	// Fill ~60% of the log, then overwrite it several times over: the
	// pool has to cross the low-water mark and clean repeatedly.
	pages := lay.TotalPages() * 6 / 10
	clusterAppend(t, c, f, pages, 32, idxPage)

	s.ResetStats()
	probe := f.At(sched.Realtime)
	probeReads, probeErrs := 0, 0
	churning := true
	var probeLoop func()
	probeLoop = func() {
		if !churning {
			return
		}
		probe.ReadPage(probeReads%pages, func(_ []byte, err error) {
			probeReads++
			if err != nil {
				probeErrs++
			}
			probeLoop()
		})
	}
	probeLoop()

	writer := f.At(sched.Batch)
	buf := make([]byte, lay.PageSize)
	overwrites := lay.TotalPages()
	done, werrs := 0, 0
	next := 0
	var churn func()
	churn = func() {
		if next >= overwrites {
			return
		}
		idx := next % pages
		next++
		idxPage(idx+1, buf)
		writer.WritePage(idx, buf, func(err error) {
			done++
			if err != nil {
				werrs++
			}
			if done == overwrites {
				churning = false
			}
			churn()
		})
	}
	for i := 0; i < 16; i++ {
		churn()
	}
	c.Run()

	if werrs > 0 || probeErrs > 0 {
		t.Fatalf("errors: %d writes, %d probe reads", werrs, probeErrs)
	}
	if fs.CleanMoves == 0 || fs.SegsCleaned == 0 {
		t.Fatalf("churn never reached cleaning: moves=%d segs=%d free=%d",
			fs.CleanMoves, fs.SegsCleaned, fs.totalFree())
	}
	if probeReads == 0 {
		t.Fatal("realtime probe starved: zero completions under cleaning")
	}
	snap := s.Snapshot()
	var bgOps, rtOps int64
	for _, cs := range snap.Classes {
		switch cs.Class {
		case "background":
			bgOps = cs.Ops
		case "realtime":
			rtOps = cs.Ops
		}
	}
	// Every relocation is a Background read + write, every reclaimed
	// segment a Background erase.
	if want := 2*fs.CleanMoves + fs.SegsCleaned; bgOps < want {
		t.Fatalf("background class saw %d ops, want >= %d (cleaning bypassed the scheduler?)", bgOps, want)
	}
	if rtOps != int64(probeReads) {
		t.Fatalf("realtime class saw %d ops, probe completed %d", rtOps, probeReads)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterPhysicalAddrsMatchEngineReads: the Figure 8 contract —
// an in-store engine reading the addresses the file system reports
// (through the scheduler's Accel admission) must see exactly the
// bytes the host sees reading the file.
func TestClusterPhysicalAddrsMatchEngineReads(t *testing.T) {
	c, s, fs := newClusterFS(t, 2, 4)
	f, err := fs.Create("scan")
	if err != nil {
		t.Fatal(err)
	}
	const pages = 96
	clusterAppend(t, c, f, pages, 16, idxPage)
	addrs, err := f.PhysicalAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != pages {
		t.Fatalf("addrs = %d", len(addrs))
	}
	st, err := s.NewAccelStream("engine", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		var host, engine []byte
		herr := errors.New("host read pending")
		f.ReadPage(i, func(d []byte, e error) { host, herr = d, e })
		eerr := errors.New("engine read pending")
		addr := a
		var admit func()
		admit = func() {
			if err := st.Read(addr, func(d []byte, e error) { engine, eerr = d, e }); err == sched.ErrBackpressure {
				c.Eng.After(1000, admit)
			} else if err != nil {
				t.Fatal(err)
			}
		}
		admit()
		c.Run()
		if herr != nil || eerr != nil {
			t.Fatalf("page %d: host err=%v engine err=%v", i, herr, eerr)
		}
		if !bytes.Equal(host, engine) {
			t.Fatalf("page %d: engine read %x..., host read %x... at %v", i, engine[:4], host[:4], a)
		}
	}
}
