package rfs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ClusterBackend stripes the file system's log over every chip of
// every card of every node of a cluster — the paper's §4 stack at
// appliance scale, with RFS on top of the whole machine instead of
// one card. All I/O is admitted through the request scheduler at the
// owning node: app reads and writes at the file handle's QoS class,
// segment cleaning (relocation copies and victim erases) on the
// Background class, where the dispatcher's GC token budget defers it
// behind latency-class tenants and escalates with cleaning urgency
// (SetUrgency, normally wired from the FS hooks by NewClusterFS).
//
// Writes are admission-sequenced per (node, class): NAND programs
// pages of a block strictly in order, and the FS allocates each
// class's frontier in issue order, so a backpressured write must
// stall its class's later writes, never let them overtake (the same
// rule as the volume's per-IOTag sequencers). Each tenant class plus
// cleaning gets its own frontier lane in the FS, so two classes never
// share a NAND block.
type ClusterBackend struct {
	c     *core.Cluster
	s     *sched.Scheduler
	lay   Layout
	retry sim.Time

	nodes []*backendNode

	cardsPerNode, buses, chipsPerBus int
	blocksPerChip, pagesPerBlock     int
}

// backendNode holds one node's admission plumbing.
type backendNode struct {
	streams [sched.NumClasses]*sched.Stream
	wseqs   [sched.NumClasses]*writeSeq
}

type pendingWrite struct {
	addr core.PageAddr
	data []byte
	cb   func(error)
}

type writeSeq struct {
	q       []pendingWrite
	stalled bool
}

// ClusterConfig tunes the cluster backend.
type ClusterConfig struct {
	// RetryDelay is the backoff before re-admitting an op that hit
	// scheduler backpressure (default 5 µs).
	RetryDelay sim.Time
}

// NewClusterBackend builds the backend over cluster c, admitting all
// flash traffic through scheduler s (which must belong to the same
// cluster).
func NewClusterBackend(c *core.Cluster, s *sched.Scheduler, cfg ClusterConfig) (*ClusterBackend, error) {
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 5 * sim.Microsecond
	}
	p := c.Params
	g := p.Geometry
	b := &ClusterBackend{
		c:             c,
		s:             s,
		retry:         cfg.RetryDelay,
		cardsPerNode:  p.CardsPerNode,
		buses:         g.Buses,
		chipsPerBus:   g.ChipsPerBus,
		blocksPerChip: g.BlocksPerChip,
		pagesPerBlock: g.PagesPerBlock,
	}
	b.lay = Layout{
		Chips:       c.Nodes() * p.CardsPerNode * g.Buses * g.ChipsPerBus,
		SegsPerChip: g.BlocksPerChip,
		PagesPerSeg: g.PagesPerBlock,
		PageSize:    g.PageSize,
		// One write lane per tenant class; the FS adds the cleaning
		// lane, whose traffic rides the Background streams.
		Lanes: int(sched.Accel),
	}
	for n := 0; n < c.Nodes(); n++ {
		bn := &backendNode{}
		for cl := sched.Class(0); cl < sched.NumClasses; cl++ {
			if cl == sched.Accel {
				// Device-side ISP reads never flow through the FS host
				// path; engines read via sched.AccelStream instead.
				continue
			}
			st, err := s.NewStream(fmt.Sprintf("rfs-n%d-%s", n, cl), n, cl)
			if err != nil {
				return nil, err
			}
			bn.streams[cl] = st
		}
		b.nodes = append(b.nodes, bn)
	}
	return b, nil
}

// NewClusterFS builds a cluster backend and mounts a file system on
// it, wiring the FS's cleaning urgency into the scheduler's
// Background token budget on every node (the FS stripes its log over
// all of them, so cleaning pressure is cluster-wide). Do not share
// the scheduler's GC urgency channel with a volume: the volume's FTLs
// push per-node urgency on the same hook.
func NewClusterFS(c *core.Cluster, s *sched.Scheduler, ccfg ClusterConfig, cfg Config) (*FS, *ClusterBackend, error) {
	b, err := NewClusterBackend(c, s, ccfg)
	if err != nil {
		return nil, nil, err
	}
	fs, err := NewWithBackend(b, cfg)
	if err != nil {
		return nil, nil, err
	}
	push := func() { b.SetUrgency(fs.Urgency()) }
	fs.SetHooks(Hooks{
		CleanStart: push,
		CleanEnd:   push,
		Urgency:    func(float64) { push() },
	})
	return fs, b, nil
}

// Layout exposes the cluster-wide log shape.
func (b *ClusterBackend) Layout() Layout { return b.lay }

// SetUrgency reports the FS's cleaning urgency to every node's
// Background token budget.
func (b *ClusterBackend) SetUrgency(u float64) {
	for n := range b.nodes {
		b.s.SetGCUrgency(n, u)
	}
}

// Addr resolves a linear ppn to its cluster-wide location. The chip
// index decomposes node-major (node, card, bus, chip), so the FS's
// round-robin chip cursor walks every chip of the appliance once per
// cycle — sequential appends stripe across all nodes, cards, buses
// and chips.
func (b *ClusterBackend) Addr(ppn int) core.PageAddr {
	page := ppn % b.pagesPerBlock
	q := ppn / b.pagesPerBlock
	block := q % b.blocksPerChip
	q /= b.blocksPerChip
	chip := q % b.chipsPerBus
	q /= b.chipsPerBus
	bus := q % b.buses
	q /= b.buses
	card := q % b.cardsPerNode
	node := q / b.cardsPerNode
	return core.PageAddr{Node: node, Card: card,
		Addr: nand.Addr{Bus: bus, Chip: chip, Block: block, Page: page}}
}

// classFor maps an op onto the scheduler class it is admitted at.
func classFor(class sched.Class, clean bool) sched.Class {
	if clean {
		return sched.Background
	}
	if class >= sched.Accel {
		return sched.Batch
	}
	return class
}

// admitRetrying runs admit, retrying on scheduler backpressure after
// RetryDelay; any other admission error goes to fail.
func (b *ClusterBackend) admitRetrying(admit func() error, fail func(error)) {
	var try func()
	try = func() {
		err := admit()
		if err == sched.ErrBackpressure {
			b.c.Eng.After(b.retry, try)
		} else if err != nil {
			fail(err)
		}
	}
	try()
}

// ReadPage admits a physical read at the owning node, retrying on
// backpressure (reads have no ordering constraint).
func (b *ClusterBackend) ReadPage(ppn int, class sched.Class, clean bool, cb func([]byte, error)) {
	a := b.Addr(ppn)
	st := b.nodes[a.Node].streams[classFor(class, clean)]
	b.admitRetrying(
		func() error { return st.Read(a, cb) },
		func(err error) { cb(nil, err) })
}

// WritePage admits a physical program through the (node, class) FIFO
// sequencer: strictly in issue order, stalling (not reordering) on
// backpressure.
func (b *ClusterBackend) WritePage(ppn int, class sched.Class, clean bool, data []byte, cb func(error)) {
	a := b.Addr(ppn)
	cl := classFor(class, clean)
	bn := b.nodes[a.Node]
	sq := bn.wseqs[cl]
	if sq == nil {
		sq = &writeSeq{}
		bn.wseqs[cl] = sq
	}
	sq.q = append(sq.q, pendingWrite{addr: a, data: data, cb: cb})
	b.pumpWrites(bn, cl, sq)
}

func (b *ClusterBackend) pumpWrites(bn *backendNode, cl sched.Class, sq *writeSeq) {
	st := bn.streams[cl]
	for !sq.stalled && len(sq.q) > 0 {
		w := sq.q[0]
		err := st.Write(w.addr, w.data, w.cb)
		if err == sched.ErrBackpressure {
			sq.stalled = true
			b.c.Eng.After(b.retry, func() {
				sq.stalled = false
				b.pumpWrites(bn, cl, sq)
			})
			return
		}
		sq.q[0] = pendingWrite{}
		sq.q = sq.q[1:]
		if err != nil {
			w.cb(err)
		}
	}
}

// EraseSeg admits a segment erase on the owning node's Background
// stream, retrying on backpressure. The FS only erases after every
// relocation write completed and in-flight reads drained, so no
// ordering hazard exists.
func (b *ClusterBackend) EraseSeg(seg int, cb func(error)) {
	a := b.Addr(seg * b.pagesPerBlock)
	a.Addr.Page = 0
	st := b.nodes[a.Node].streams[sched.Background]
	b.admitRetrying(func() error { return st.Erase(a, cb) }, cb)
}
