package rfs

// Regression tests for the segment cleaner's concurrency bugs, driven
// through a scripted stub Backend so every interleaving is exact:
//   - reads racing the cleaner (the victim erase must drain in-flight
//     reads; relocation must only copy);
//   - the no-progress cleaning livelock (a pass that cannot allocate
//     relocation space must fail deterministically with ErrNoSpace,
//     not re-trigger itself forever);
//   - the stale-backref window (a page invalidated while its
//     relocation is in flight must be dropped, never resurrected);
//   - the iterative cleaning pump (a huge segment cleans without one
//     stack frame per page).

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/sched"
)

// stubOp is one outstanding backend operation awaiting completion.
type stubOp struct {
	kind  string // "read", "write", "erase"
	ppn   int    // read/write
	seg   int    // erase
	clean bool
	data  []byte
	rcb   func([]byte, error)
	wcb   func(error)
}

// stubBackend is a fully scripted in-memory backend: with sync set it
// completes operations inline; otherwise they queue in pending and
// the test completes them one by one, in any order it likes.
type stubBackend struct {
	lay     Layout
	store   map[int][]byte
	sync    bool
	pending []stubOp
}

func newStub(lay Layout, sync bool) *stubBackend {
	return &stubBackend{lay: lay, store: make(map[int][]byte), sync: sync}
}

func (b *stubBackend) Layout() Layout { return b.lay }

func (b *stubBackend) Addr(ppn int) core.PageAddr {
	seg := ppn / b.lay.PagesPerSeg
	return core.PageAddr{Addr: nand.Addr{
		Chip:  seg / b.lay.SegsPerChip,
		Block: seg % b.lay.SegsPerChip,
		Page:  ppn % b.lay.PagesPerSeg,
	}}
}

func (b *stubBackend) ReadPage(ppn int, _ sched.Class, clean bool, cb func([]byte, error)) {
	op := stubOp{kind: "read", ppn: ppn, clean: clean, rcb: cb}
	if b.sync {
		b.complete(op)
		return
	}
	b.pending = append(b.pending, op)
}

func (b *stubBackend) WritePage(ppn int, _ sched.Class, clean bool, data []byte, cb func(error)) {
	op := stubOp{kind: "write", ppn: ppn, clean: clean, data: append([]byte(nil), data...), wcb: cb}
	if b.sync {
		b.complete(op)
		return
	}
	b.pending = append(b.pending, op)
}

func (b *stubBackend) EraseSeg(seg int, cb func(error)) {
	op := stubOp{kind: "erase", seg: seg, wcb: cb}
	if b.sync {
		b.complete(op)
		return
	}
	b.pending = append(b.pending, op)
}

func (b *stubBackend) complete(op stubOp) {
	switch op.kind {
	case "read":
		data, ok := b.store[op.ppn]
		if !ok {
			// Reading an erased or never-written page is the data-loss
			// symptom the erase-drain rule exists to prevent.
			op.rcb(nil, fmt.Errorf("stub: read of dead page %d", op.ppn))
			return
		}
		op.rcb(append([]byte(nil), data...), nil)
	case "write":
		b.store[op.ppn] = op.data
		op.wcb(nil)
	case "erase":
		base := op.seg * b.lay.PagesPerSeg
		for p := 0; p < b.lay.PagesPerSeg; p++ {
			delete(b.store, base+p)
		}
		op.wcb(nil)
	}
}

// pop removes and completes the first pending op matching kind (and
// clean flag when cleanOnly is set), failing the test if none exists.
func (b *stubBackend) pop(t *testing.T, kind string, clean bool) {
	t.Helper()
	for i, op := range b.pending {
		if op.kind == kind && op.clean == clean {
			b.pending = append(b.pending[:i:i], b.pending[i+1:]...)
			b.complete(op)
			return
		}
	}
	t.Fatalf("no pending %s (clean=%v) op; pending: %+v", kind, clean, b.pending)
}

// has reports whether a pending op of the kind exists.
func (b *stubBackend) has(kind string) bool {
	for _, op := range b.pending {
		if op.kind == kind {
			return true
		}
	}
	return false
}

// drain completes every pending op (FIFO) until none remain.
func (b *stubBackend) drain() {
	for len(b.pending) > 0 {
		op := b.pending[0]
		b.pending = b.pending[1:]
		b.complete(op)
	}
}

func stubPage(lay Layout, seed byte) []byte {
	p := make([]byte, lay.PageSize)
	for i := range p {
		p[i] = seed + byte(i)
	}
	return p
}

func mustAppend(t *testing.T, f *File, data []byte) {
	t.Helper()
	err := errors.New("append never completed")
	f.AppendPage(data, func(e error) { err = e })
	if err != nil {
		t.Fatalf("append: %v", err)
	}
}

// TestEraseWaitsForInflightReads pins the read/cleaner race fix: an
// app read resolved into the victim before cleaning must complete
// with its data before the victim erase issues (relocation only
// copies, so the data is still there), and the erase fires as soon as
// the read drains.
func TestEraseWaitsForInflightReads(t *testing.T) {
	lay := Layout{Chips: 1, SegsPerChip: 4, PagesPerSeg: 4, PageSize: 16, Lanes: 1}
	b := newStub(lay, true)
	fs, err := NewWithBackend(b, Config{CleanLowWater: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	// Fill seg 0 and spill into seg 1 so seg 0 seals.
	for i := 0; i < 5; i++ {
		mustAppend(t, f, stubPage(lay, byte(i)))
	}
	// Overwrite pages 0..2: their seg-0 copies die, leaving page 3 the
	// only valid page of the sealed victim-to-be.
	for i := 0; i < 3; i++ {
		err := errors.New("overwrite never completed")
		f.WritePage(i, stubPage(lay, byte(0x40+i)), func(e error) { err = e })
		if err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	// One more append seals seg 1 and opens seg 2, dropping the free
	// pool to the low-water mark.
	mustAppend(t, f, stubPage(lay, 5))
	if fs.totalFree() != 1 || fs.cleaning {
		t.Fatalf("setup: free=%d cleaning=%v", fs.totalFree(), fs.cleaning)
	}

	// From here every op is held so the interleaving is exact.
	b.sync = false

	// An app read of page 3 resolves into seg 0 and stays in flight.
	var got []byte
	readErr := errors.New("read never completed")
	f.ReadPage(3, func(d []byte, e error) { got, readErr = d, e })

	// The next append finds the pool low and starts cleaning seg 0.
	appendErr := errors.New("append never completed")
	f.AppendPage(stubPage(lay, 0x77), func(e error) { appendErr = e })
	if !fs.cleaning {
		t.Fatal("cleaner did not start")
	}

	// Let the relocation of page 3 run to completion.
	b.pop(t, "read", true)
	b.pop(t, "write", true)

	// Relocation is done — but the app read is still in flight, so the
	// erase must NOT be issued yet.
	if b.has("erase") {
		t.Fatal("victim erase issued while a read was in flight against the victim")
	}

	// Drain the read: it must return the page's original data (the
	// relocation only copied), and the erase must now issue.
	b.pop(t, "read", false)
	if readErr != nil || !bytes.Equal(got, stubPage(lay, 3)) {
		t.Fatalf("racing read corrupted: err=%v", readErr)
	}
	if !b.has("erase") {
		t.Fatal("erase did not issue after the last in-flight read drained")
	}
	b.drain() // erase + the deferred append
	if appendErr != nil {
		t.Fatalf("append queued behind cleaning failed: %v", appendErr)
	}
	if fs.SegsCleaned != 1 {
		t.Fatalf("SegsCleaned = %d", fs.SegsCleaned)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Everything still reads back.
	b.sync = true
	want := [][]byte{stubPage(lay, 0x40), stubPage(lay, 0x41), stubPage(lay, 0x42),
		stubPage(lay, 3), stubPage(lay, 4), stubPage(lay, 5), stubPage(lay, 0x77)}
	for i, w := range want {
		var d []byte
		var e error = errors.New("pending")
		f.ReadPage(i, func(dd []byte, ee error) { d, e = dd, ee })
		if e != nil || !bytes.Equal(d, w) {
			t.Fatalf("page %d lost after cleaning: %v", i, e)
		}
	}
}

// TestNoProgressCleaningFailsDeterministically pins the livelock fix:
// when cleaning cannot allocate relocation space, the pending write
// must fail with ErrNoSpace (previously finishClean re-ran the retry,
// which re-triggered the same doomed pass forever), and an
// invalidation must clear the stall so the FS recovers.
func TestNoProgressCleaningFailsDeterministically(t *testing.T) {
	lay := Layout{Chips: 1, SegsPerChip: 2, PagesPerSeg: 2, PageSize: 16, Lanes: 1}
	b := newStub(lay, true)
	fs, err := NewWithBackend(b, Config{CleanLowWater: 1})
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := fs.Create("a")
	fb, _ := fs.Create("b")
	fc, _ := fs.Create("c")
	// Interleave so each sealed segment keeps one valid page after the
	// removals: seg0 = {a0, b0}, seg1 = {a1, c0}.
	mustAppend(t, fa, stubPage(lay, 1))
	mustAppend(t, fb, stubPage(lay, 2))
	mustAppend(t, fa, stubPage(lay, 3))
	mustAppend(t, fc, stubPage(lay, 4))
	if err := fs.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("c"); err != nil {
		t.Fatal(err)
	}

	// Appending now triggers a clean of seg 0 (one valid page), which
	// has nowhere to relocate: every frontier is full and the pool is
	// dry. Pre-fix this looped forever; post-fix the write fails.
	werr := errors.New("append never completed")
	fa.AppendPage(stubPage(lay, 5), func(e error) { werr = e })
	if !errors.Is(werr, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", werr)
	}
	if !fs.stalled {
		t.Fatal("FS not marked stalled after a no-progress clean")
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// An invalidation changes the economics: removing file a frees
	// both its pages, cleaning can now erase, and writes succeed.
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	fd, _ := fs.Create("d")
	mustAppend(t, fd, stubPage(lay, 6))
	var d []byte
	var e error = errors.New("pending")
	fd.ReadPage(0, func(dd []byte, ee error) { d, e = dd, ee })
	if e != nil || !bytes.Equal(d, stubPage(lay, 6)) {
		t.Fatalf("post-recovery read: %v", e)
	}
	if fs.SegsCleaned == 0 {
		t.Fatal("recovery never cleaned a segment")
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidateDuringCleanMove pins the stale-backref fix: a page
// whose overwrite (issued before the clean began) lands while the
// cleaner's copy of it is in flight must not be resurrected when the
// relocation write completes — the moved copy is dropped and the
// mapping keeps the new data.
func TestInvalidateDuringCleanMove(t *testing.T) {
	lay := Layout{Chips: 1, SegsPerChip: 4, PagesPerSeg: 4, PageSize: 16, Lanes: 1}
	b := newStub(lay, true)
	fs, err := NewWithBackend(b, Config{CleanLowWater: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, f, stubPage(lay, byte(i)))
	}
	for i := 0; i < 3; i++ {
		err := errors.New("pending")
		f.WritePage(i, stubPage(lay, byte(0x40+i)), func(e error) { err = e })
		if err != nil {
			t.Fatal(err)
		}
	}
	// Seg 0 is sealed with page 3 its only valid page. Hold ops: issue
	// an overwrite of page 3 (its allocation happens now, sealing seg 1
	// and opening seg 2; only the completion is held), so it is already
	// past the cleaner's write-deferral gate when cleaning starts.
	b.sync = false
	owErr := errors.New("overwrite never completed")
	f.WritePage(3, stubPage(lay, 0x99), func(e error) { owErr = e })
	if fs.cleaning {
		t.Fatal("setup: cleaning started too early")
	}

	// Trigger cleaning of seg 0; the cleaner reads page 3's old copy.
	appErr := errors.New("append never completed")
	f.AppendPage(stubPage(lay, 0x55), func(e error) { appErr = e })
	if !fs.cleaning {
		t.Fatal("cleaner did not start")
	}
	b.pop(t, "read", true) // cleaner's copy read completes; its write is now pending

	// The app overwrite of page 3 lands mid-move: the old ppn is
	// invalidated and the mapping points at the new page.
	b.pop(t, "write", false)
	if owErr != nil {
		t.Fatalf("overwrite: %v", owErr)
	}

	// Now the relocation write completes. Pre-fix it re-installed the
	// stale copy over the fresh mapping (resurrection) and
	// double-counted validity; post-fix the copy is dropped.
	b.pop(t, "write", true)
	b.drain()
	if appErr != nil {
		t.Fatalf("append: %v", appErr)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b.sync = true
	var d []byte
	var e error = errors.New("pending")
	f.ReadPage(3, func(dd []byte, ee error) { d, e = dd, ee })
	if e != nil || !bytes.Equal(d, stubPage(lay, 0x99)) {
		t.Fatalf("overwrite lost to a resurrected clean move: err=%v data[0]=%x", e, d[0])
	}
}

// TestRemoveDuringCleanMove: same window, but the invalidation is a
// whole-file Remove. The moved copy must be dropped (no mapping, no
// double-invalidate) and the inode stays dead.
func TestRemoveDuringCleanMove(t *testing.T) {
	lay := Layout{Chips: 1, SegsPerChip: 4, PagesPerSeg: 4, PageSize: 16, Lanes: 1}
	b := newStub(lay, true)
	fs, err := NewWithBackend(b, Config{CleanLowWater: 1})
	if err != nil {
		t.Fatal(err)
	}
	keep, _ := fs.Create("keep")
	doomed, _ := fs.Create("doomed")
	mustAppend(t, doomed, stubPage(lay, 9))
	for i := 0; i < 6; i++ {
		mustAppend(t, keep, stubPage(lay, byte(i)))
	}
	for i := 0; i < 2; i++ {
		err := errors.New("pending")
		keep.WritePage(i, stubPage(lay, byte(0x40+i)), func(e error) { err = e })
		if err != nil {
			t.Fatal(err)
		}
	}
	// Seg 0 = {doomed:0 valid, keep:0 dead, keep:1 dead, keep:2 valid};
	// the pool is at the low-water mark.
	if fs.totalFree() != 1 || fs.segs[0].valid != 2 {
		t.Fatalf("setup: free=%d seg0.valid=%d", fs.totalFree(), fs.segs[0].valid)
	}
	b.sync = false
	appErr := errors.New("append never completed")
	keep.AppendPage(stubPage(lay, 0x55), func(e error) { appErr = e })
	if !fs.cleaning {
		t.Fatal("cleaner did not start")
	}
	b.pop(t, "read", true) // cleaner copies doomed's page; write pending

	live := fs.LiveMappings()
	if err := fs.Remove("doomed"); err != nil {
		t.Fatal(err)
	}
	if fs.LiveMappings() != live-1 {
		t.Fatalf("remove dropped %d mappings", live-fs.LiveMappings())
	}

	b.pop(t, "write", true) // relocation write lands after the Remove
	b.drain()
	if appErr != nil {
		t.Fatalf("append: %v", appErr)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removed file resurrected: %v", err)
	}
}

// TestCleanDeepSegmentIterative exercises the iterative cleaning pump
// on a segment three orders of magnitude deeper than a real erase
// block, with a fully synchronous backend: pre-fix, each relocated
// page cost one recursive stack frame.
func TestCleanDeepSegmentIterative(t *testing.T) {
	lay := Layout{Chips: 1, SegsPerChip: 4, PagesPerSeg: 16384, PageSize: 4, Lanes: 1}
	b := newStub(lay, true)
	fs, err := NewWithBackend(b, Config{CleanLowWater: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("deep")
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, lay.PageSize)
	// Fill segs 0 and 1; the next append has to open seg 2, hit the
	// low-water mark and clean seg 0 — relocating 16K-1 valid pages
	// (page 0 is invalidated first so seg 0 is a legal victim).
	for i := 0; i < 2*lay.PagesPerSeg; i++ {
		mustAppend(t, f, page)
	}
	werr := errors.New("pending")
	f.WritePage(0, page, func(e error) { werr = e })
	if werr != nil {
		t.Fatal(werr)
	}
	mustAppend(t, f, page)
	if fs.SegsCleaned != 1 {
		t.Fatalf("SegsCleaned = %d (CleanMoves = %d)", fs.SegsCleaned, fs.CleanMoves)
	}
	if fs.CleanMoves < int64(lay.PagesPerSeg-1) {
		t.Fatalf("CleanMoves = %d, want >= %d", fs.CleanMoves, lay.PagesPerSeg-1)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
